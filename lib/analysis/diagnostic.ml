type severity = Error | Warning | Info

type side = White | Black

type location =
  | Whole
  | Label of string
  | Label_pair of string * string
  | Config of side * string
  | Source_line of side * int
  | Certificate

type t = {
  code : string;
  severity : severity;
  subject : string;
  location : location;
  message : string;
}

let valid_code code =
  String.length code = 5
  && String.sub code 0 2 = "SL"
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub code 2 3)

let make ~code severity ~subject ?(location = Whole) message =
  if not (valid_code code) then
    invalid_arg (Printf.sprintf "Diagnostic.make: malformed code %S" code);
  { code; severity; subject; location; message }

let error ~code ~subject ?location message =
  make ~code Error ~subject ?location message

let warning ~code ~subject ?location message =
  make ~code Warning ~subject ?location message

let info ~code ~subject ?location message =
  make ~code Info ~subject ?location message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let side_to_string = function White -> "white" | Black -> "black"

let location_to_string = function
  | Whole -> "-"
  | Label l -> Printf.sprintf "label %s" l
  | Label_pair (a, b) -> Printf.sprintf "labels %s,%s" a b
  | Config (side, c) -> Printf.sprintf "%s config `%s`" (side_to_string side) c
  | Source_line (side, i) -> Printf.sprintf "%s line %d" (side_to_string side) i
  | Certificate -> "certificate"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.code b.code in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.subject b.subject in
      if c <> 0 then c
      else Stdlib.compare (a.location, a.message) (b.location, b.message)

let max_severity = function
  | [] -> None
  | ds ->
      Some
        (List.fold_left
           (fun acc d ->
             if severity_rank d.severity < severity_rank acc then d.severity
             else acc)
           Info ds)

let exit_code ds =
  match max_severity ds with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Info | None -> 0

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s @@ %s: %s"
    (severity_to_string d.severity)
    d.code d.subject
    (location_to_string d.location)
    d.message

(* Machine lines must stay one physical line per diagnostic. *)
let escape_field s =
  String.concat ""
    (List.map
       (function
         | '\t' -> "\\t" | '\n' -> "\\n" | '\r' -> "" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_machine_string d =
  String.concat "\t"
    [
      d.code;
      severity_to_string d.severity;
      escape_field d.subject;
      escape_field (location_to_string d.location);
      escape_field d.message;
    ]

let pp_report ~machine fmt ds =
  let ds = List.sort compare ds in
  if machine then
    List.iter (fun d -> Format.fprintf fmt "%s@." (to_machine_string d)) ds
  else begin
    List.iter (fun d -> Format.fprintf fmt "%a@." pp d) ds;
    let count sev =
      List.length (List.filter (fun d -> d.severity = sev) ds)
    in
    Format.fprintf fmt "%d error(s), %d warning(s), %d info@." (count Error)
      (count Warning) (count Info)
  end
