(** Certificate auditing for framework results (SL03x).

    A {!Supported_local.Framework.result} is the final artifact of a
    lower-bound run: a lift, a solvability certificate, and a claimed
    round bound.  The auditor re-validates the whole record against
    the inputs that allegedly produced it:

    - the lift must be the lift of the stated last problem at the
      support's degrees (SL030);
    - a [Solvable] assignment is replayed through
      {!Slocal_model.Checker} (SL031);
    - [det_rounds] is cross-checked against the Theorem B.2 formula
      [min {2k, (g-4)/2}] (SL032);
    - the recorded girth and node count must match the support
      (SL035);
    - an [Unsolvable_by_search] certificate is re-searched within a
      budget: a solution found refutes it (SL036), budget exhaustion
      is reported as info (SL037);
    - [Undecided] certificates are flagged as warnings (SL033), and
      [Solvable] ones as info — no lower bound follows (SL034). *)

open Slocal_graph
open Slocal_formalism

val audit_result :
  support:Bipartite.t ->
  last_problem:Problem.t ->
  k:int ->
  ?recheck_budget:int ->
  Supported_local.Framework.result ->
  Diagnostic.t list
(** [recheck_budget] (default [2_000_000] search nodes) bounds the
    re-search of unsolvability certificates; [0] disables it. *)
