module D = Diagnostic
module Json = Slocal_obs.Json

type classification =
  | Immutable_after_init
  | Per_call
  | Shared_cache_needs_lock
  | Nondeterministic

let classification_to_string = function
  | Immutable_after_init -> "immutable-after-init"
  | Per_call -> "per-call"
  | Shared_cache_needs_lock -> "shared-cache-needs-lock"
  | Nondeterministic -> "nondeterministic"

let classification_of_string = function
  | "immutable-after-init" | "domain-safe" -> Some Immutable_after_init
  | "per-call" -> Some Per_call
  | "shared-cache-needs-lock" -> Some Shared_cache_needs_lock
  | "nondeterministic" -> Some Nondeterministic
  | _ -> None

type kind =
  | Mutable_binding of string
  | Toplevel_lazy
  | Mutable_type of string list
  | Random_source of string
  | Wall_clock of string
  | Hash_order_iteration of string
  | Exit_or_signal_handler of string

let code_of_kind = function
  | Mutable_binding _ -> "SL050"
  | Toplevel_lazy | Mutable_type _ -> "SL051"
  | Random_source _ -> "SL052"
  | Wall_clock _ -> "SL053"
  | Hash_order_iteration _ -> "SL054"
  | Exit_or_signal_handler _ -> "SL055"

let kind_tag = function
  | Mutable_binding _ -> "mutable"
  | Toplevel_lazy -> "lazy"
  | Mutable_type _ -> "mutable-type"
  | Random_source _ -> "random"
  | Wall_clock _ -> "clock"
  | Hash_order_iteration _ -> "hash-order"
  | Exit_or_signal_handler _ -> "exit-handler"

let kind_detail = function
  | Mutable_binding c -> c
  | Toplevel_lazy -> "lazy"
  | Mutable_type fields -> String.concat "," fields
  | Random_source s | Wall_clock s | Hash_order_iteration s
  | Exit_or_signal_handler s ->
      s

let kind_describe = function
  | Mutable_binding c ->
      Printf.sprintf "module-scope mutable binding (%s)" c
  | Toplevel_lazy -> "lazy value at module scope"
  | Mutable_type fields ->
      Printf.sprintf "type with mutable state (field%s %s)"
        (if List.length fields = 1 then "" else "s")
        (String.concat ", " fields)
  | Random_source s -> Printf.sprintf "nondeterministic PRNG (%s)" s
  | Wall_clock s -> Printf.sprintf "wall-clock read (%s) outside lib/obs" s
  | Hash_order_iteration s ->
      Printf.sprintf "hash-order-dependent iteration (%s, no canonical sort)" s
  | Exit_or_signal_handler s -> Printf.sprintf "process-exit hook (%s)" s

type annotation_source = Pragma | Table

type finding = {
  file : string;
  line : int;
  name : string;
  key : string;
  kind : kind;
  classification : classification option;
  reason : string option;
  annotation : annotation_source option;
}

(* ------------------------------------------------------------------ *)
(* Lexical scrub: replace comment and string-literal contents by
   spaces (newlines kept, so line numbers survive), collecting the
   [staticcheck:] pragma comments on the way.  A plain state machine
   is exact enough for this repository's sources: nested comments and
   escaped quotes are handled; the one ambiguity — the character
   literal ['"'] — is disambiguated by its surrounding quotes. *)

type pragma = { p_line : int; p_word : string; p_rest : string }

let pragma_of_comment body =
  let t = String.trim body in
  let prefix = "staticcheck:" in
  if String.length t >= String.length prefix
     && String.sub t 0 (String.length prefix) = prefix
  then
    let rest =
      String.trim (String.sub t (String.length prefix)
                     (String.length t - String.length prefix))
    in
    match String.index_opt rest ' ' with
    | None -> Some (rest, "")
    | Some i ->
        Some
          ( String.sub rest 0 i,
            String.trim (String.sub rest (i + 1) (String.length rest - i - 1))
          )
  else None

let scrub_and_pragmas text =
  let n = String.length text in
  let out = Bytes.of_string text in
  let pragmas = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let blank j = if Bytes.get out j <> '\n' then Bytes.set out j ' ' in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
      let start_line = !line in
      let depth = ref 1 in
      let j = ref (!i + 2) in
      let body = Buffer.create 64 in
      while !depth > 0 && !j < n do
        if !j + 1 < n && text.[!j] = '(' && text.[!j + 1] = '*' then begin
          incr depth;
          Buffer.add_string body "(*";
          j := !j + 2
        end
        else if !j + 1 < n && text.[!j] = '*' && text.[!j + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string body "*)";
          j := !j + 2
        end
        else begin
          if text.[!j] = '\n' then incr line;
          Buffer.add_char body text.[!j];
          incr j
        end
      done;
      for k = !i to min (!j - 1) (n - 1) do
        blank k
      done;
      (match pragma_of_comment (Buffer.contents body) with
      | Some (p_word, p_rest) ->
          pragmas := { p_line = start_line; p_word; p_rest } :: !pragmas
      | None -> ());
      i := !j
    end
    else if c = '"' then
      if !i > 0 && text.[!i - 1] = '\'' && !i + 1 < n && text.[!i + 1] = '\''
      then incr i (* the character literal '"' *)
      else begin
        blank !i;
        incr i;
        let fin = ref false in
        while (not !fin) && !i < n do
          match text.[!i] with
          | '\\' when !i + 1 < n ->
              blank !i;
              if text.[!i + 1] = '\n' then incr line else blank (!i + 1);
              i := !i + 2
          | '"' ->
              blank !i;
              incr i;
              fin := true
          | '\n' ->
              incr line;
              incr i
          | _ ->
              blank !i;
              incr i
        done
      end
    else incr i
  done;
  (Bytes.to_string out, List.rev !pragmas)

(* ------------------------------------------------------------------ *)
(* Top-level item segmentation: an item starts at a non-blank line
   whose first character is in column 0 (the repository is formatted
   by ocamlformat-style conventions, so this is exact). *)

type item = { it_line : int; it_text : string }

let items_of_scrubbed scrubbed =
  let lines = String.split_on_char '\n' scrubbed in
  let items = ref [] and cur = ref None in
  let flush () =
    match !cur with
    | Some (l, buf) -> items := { it_line = l; it_text = Buffer.contents buf } :: !items
    | None -> ()
  in
  List.iteri
    (fun idx raw ->
      let starts_item =
        String.length raw > 0 && raw.[0] <> ' ' && raw.[0] <> '\t'
      in
      if starts_item then begin
        flush ();
        cur := Some (idx + 1, Buffer.create 128)
      end;
      match !cur with
      | Some (_, buf) ->
          Buffer.add_string buf raw;
          Buffer.add_char buf '\n'
      | None -> ())
    lines;
  flush ();
  List.rev !items

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Occurrences of [word] as a standalone token: the previous character
   is neither an identifier character nor '.', the next is not an
   identifier character.  Returns 0-based offsets. *)
let token_occurrences ?(allow_dotted = false) text word =
  let n = String.length text and k = String.length word in
  let acc = ref [] in
  let i = ref 0 in
  while !i + k <= n do
    if
      String.sub text !i k = word
      && (!i = 0
         || (not (is_ident_char text.[!i - 1]))
            && (allow_dotted || text.[!i - 1] <> '.'))
      && (!i + k = n || not (is_ident_char text.[!i + k]))
    then acc := !i :: !acc;
    incr i
  done;
  List.rev !acc

let contains_token ?allow_dotted text word =
  token_occurrences ?allow_dotted text word <> []

let line_of_offset text off =
  let line = ref 1 in
  for i = 0 to min (off - 1) (String.length text - 1) do
    if text.[i] = '\n' then incr line
  done;
  !line

(* ------------------------------------------------------------------ *)
(* Detectors. *)

let mutable_constructors =
  [
    "ref";
    "Hashtbl.create";
    "Array.make";
    "Array.create_float";
    "Queue.create";
    "Buffer.create";
    "Stack.create";
    "Bytes.create";
    "Bytes.make";
    "Atomic.make";
    "Mutex.create";
    "Domain.DLS.new_key";
  ]

let cache_container_types =
  [ "Hashtbl.t"; "Queue.t"; "Buffer.t"; "Stack.t" ]

let first_ident s =
  let n = String.length s in
  let i = ref 0 in
  while
    !i < n && not (is_ident_char s.[!i] && s.[!i] >= 'a' && s.[!i] <= 'z'
                   || s.[!i] = '_')
  do
    incr i
  done;
  if !i >= n then None
  else begin
    let j = ref !i in
    while !j < n && is_ident_char s.[!j] do
      incr j
    done;
    Some (String.sub s !i (!j - !i), !j)
  end

(* The head of a let item: everything before the first '='.  The item
   defines a function (per-call state; out of scope) when tokens other
   than a type annotation separate the bound name from '=', or when
   the body starts with [fun]/[function]. *)
let let_binding item =
  match String.index_opt item.it_text '=' with
  | None -> None
  | Some eq ->
      let head = String.sub item.it_text 0 eq in
      let body =
        String.sub item.it_text (eq + 1) (String.length item.it_text - eq - 1)
      in
      let head =
        (* strip the leading let / and / rec keywords *)
        let rec strip s =
          let t = String.trim s in
          let kw w =
            let k = String.length w in
            String.length t > k
            && String.sub t 0 k = w
            && not (is_ident_char t.[k])
          in
          if kw "let" then strip (String.sub t 3 (String.length t - 3))
          else if kw "and" then strip (String.sub t 3 (String.length t - 3))
          else if kw "rec" then strip (String.sub t 3 (String.length t - 3))
          else t
        in
        strip head
      in
      if head = "" then None
      else
        let name, rest =
          match first_ident head with
          | Some (nm, j) ->
              (nm, String.sub head j (String.length head - j))
          | None -> ("_", head)
        in
        let params =
          (* anything between the name and the ':' of a type
             annotation (or the '=') counts as a parameter *)
          let upto =
            match String.index_opt rest ':' with
            | Some c -> String.sub rest 0 c
            | None -> rest
          in
          String.exists (fun c -> is_ident_char c || c = '(') upto
        in
        let trimmed_body = String.trim body in
        let is_function =
          params
          || (String.length trimmed_body >= 3
             && (String.sub trimmed_body 0 3 = "fun"
                && (String.length trimmed_body = 3
                   || not (is_ident_char trimmed_body.[3]))
                || String.length trimmed_body >= 8
                   && String.sub trimmed_body 0 8 = "function"))
        in
        Some (name, body, is_function)

(* Mutable or cache-container fields of a type declaration's text.
   Arrays are deliberately out of scope: array-valued fields are
   visible, caller-owned buffers, while the targets here are the
   {e hidden} caches and accumulators ([Hashtbl.t], [Queue.t],
   [Buffer.t], [Stack.t], [ref]) and explicit [mutable] fields. *)
let mutable_fields_of_type text =
  let fields = ref [] in
  let add nm = if not (List.mem nm !fields) then fields := nm :: !fields in
  List.iter
    (fun line ->
      (* [mutable f] anywhere on the line (single-line records too) *)
      List.iter
        (fun off ->
          let rest =
            String.sub line (off + 7) (String.length line - off - 7)
          in
          match first_ident rest with Some (nm, _) -> add nm | None -> ())
        (token_occurrences line "mutable");
      let t = String.trim line in
      match String.index_opt t ':' with
      | Some c when c > 0 -> (
          let lhs = String.sub t 0 c
          and rhs = String.sub t (c + 1) (String.length t - c - 1) in
          let container =
            List.exists
              (fun ty -> contains_token ~allow_dotted:true rhs ty)
              cache_container_types
            || contains_token rhs "ref"
          in
          if container then
            match first_ident lhs with
            | Some (nm, j)
              when String.trim (String.sub lhs j (String.length lhs - j)) = ""
              ->
                add nm
            | _ -> ())
      | _ -> ())
    (String.split_on_char '\n' text);
  List.rev !fields

(* All type declarations in scrubbed source, at any nesting depth
   (types inside [module M = struct] blocks are indented, so the
   top-level item segmentation alone would miss them).  A declaration's
   block is its [type] line plus every following line that is blank or
   more deeply indented. *)
let type_blocks scrubbed =
  let indent_of line =
    let i = ref 0 in
    while !i < String.length line && line.[!i] = ' ' do
      incr i
    done;
    !i
  in
  let lines = Array.of_list (String.split_on_char '\n' scrubbed) in
  let blocks = ref [] in
  let n = Array.length lines in
  let i = ref 0 in
  while !i < n do
    let line = lines.(!i) in
    let t = String.trim line in
    (if
       String.length t > 5
       && String.sub t 0 5 = "type "
       && String.for_all (fun c -> c = ' ') (String.sub line 0 (indent_of line))
     then
       let indent = indent_of line in
       let buf = Buffer.create 128 in
       Buffer.add_string buf line;
       Buffer.add_char buf '\n';
       let start = !i in
       incr i;
       while
         !i < n
         && (String.trim lines.(!i) = "" || indent_of lines.(!i) > indent)
       do
         Buffer.add_string buf lines.(!i);
         Buffer.add_char buf '\n';
         incr i
       done;
       decr i;
       (* name: after [type] and optional [nonrec] / type parameters *)
       let after = String.sub t 5 (String.length t - 5) in
       let after =
         let tr = String.trim after in
         if String.length tr > 7 && String.sub tr 0 7 = "nonrec " then
           String.sub tr 7 (String.length tr - 7)
         else tr
       in
       let rec skip s =
         let s = String.trim s in
         if s = "" then None
         else if s.[0] = '\'' || s.[0] = '(' || s.[0] = '+' || s.[0] = '-' then
           match String.index_opt s ' ' with
           | None -> None
           | Some j -> skip (String.sub s j (String.length s - j))
         else match first_ident s with Some (nm, _) -> Some nm | None -> None
       in
       match skip after with
       | Some nm -> blocks := (nm, start + 1, Buffer.contents buf) :: !blocks
       | None -> ());
    incr i
  done;
  List.rev !blocks

(* Constructor tokens are only counted in the initialization prefix of
   a binding's body: everything before the first nested function
   definition ([fun], [function], or an inner [let f params = ...]).
   Mutable state created inside a nested closure is that closure's
   local state, not module state. *)
let init_prefix body =
  let buf = Buffer.create (String.length body) in
  (try
     List.iter
       (fun line ->
         let t = String.trim line in
         let nested_fun_let =
           String.length t > 4
           && String.sub t 0 4 = "let "
           &&
           match String.index_opt t '=' with
           | None -> false
           | Some eq -> (
               let head = String.sub t 4 (eq - 4) in
               let head =
                 match String.index_opt head ':' with
                 | Some c -> String.sub head 0 c
                 | None -> head
               in
               match first_ident head with
               | Some (_, j) ->
                   String.exists
                     (fun c -> is_ident_char c || c = '(')
                     (String.sub head j (String.length head - j))
               | None -> false)
         in
         if nested_fun_let then raise Exit;
         match
           token_occurrences line "fun" @ token_occurrences line "function"
         with
         | [] ->
             Buffer.add_string buf line;
             Buffer.add_char buf '\n'
         | offs ->
             Buffer.add_string buf
               (String.sub line 0 (List.fold_left min max_int offs));
             raise Exit)
       (String.split_on_char '\n' body)
   with Exit -> ());
  Buffer.contents buf

let sort_tokens = [ "List.sort"; "sort_uniq"; "Array.sort"; "List.stable_sort" ]

let wall_clock_tokens = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let in_obs file =
  (* lib/obs is the designated timekeeper: clock reads there are the
     implementation of the telemetry/ledger surface, not hidden
     nondeterminism on a kernel path. *)
  let needle = "lib/obs" in
  let n = String.length file and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub file i k = needle || scan (i + 1)) in
  scan 0

let scan_source ~file text =
  let scrubbed, _ = scrub_and_pragmas text in
  let items = items_of_scrubbed scrubbed in
  let findings = ref [] in
  let add line name kind = findings := (line, name, kind) :: !findings in
  (* Pass 1: type declarations (any nesting depth) with mutable state;
     their field names also let us catch module-level record literals
     with mutable fields. *)
  let blocks = type_blocks scrubbed in
  List.iter
    (fun (nm, line, block_text) ->
      let fields = mutable_fields_of_type block_text in
      if fields <> [] then add line nm (Mutable_type fields))
    blocks;
  let mutable_field_names =
    List.concat_map (fun (_, _, bt) -> mutable_fields_of_type bt) blocks
  in
  List.iter
    (fun it ->
      (* module-scope mutable bindings and lazy values *)
      (match let_binding it with
      | Some (name, body, false) ->
          let init = init_prefix body in
          (match
             List.find_opt
               (fun c -> contains_token init c)
               mutable_constructors
           with
          | Some c -> add it.it_line name (Mutable_binding c)
          | None ->
              if
                String.contains init '{'
                && List.exists (contains_token init) mutable_field_names
              then
                add it.it_line name
                  (Mutable_binding "record with mutable fields"));
          if contains_token init "lazy" then add it.it_line name Toplevel_lazy
      | Some (_, _, true) | None -> ());
      (* occurrence detectors: anywhere in the item, functions
         included *)
      let enclosing =
        match let_binding it with Some (nm, _, _) -> nm | None -> "_"
      in
      let occurrences word =
        List.map
          (fun off -> it.it_line + line_of_offset it.it_text off - 1)
          (token_occurrences ~allow_dotted:true it.it_text word)
      in
      (* uses of the global PRNG: any [Random.<f>] except the explicit
         [Random.State] API and the deterministic seeding entry point
         [Random.init]/[full_init]; [self_init] is always a finding *)
      let random_dots =
        (* 'Random.' is not an identifier token; find it directly *)
        let acc = ref [] in
        let n = String.length it.it_text in
        let i = ref 0 in
        while !i + 7 <= n do
          if
            String.sub it.it_text !i 7 = "Random."
            && (!i = 0
               || (not (is_ident_char it.it_text.[!i - 1]))
                  && it.it_text.[!i - 1] <> '.')
          then acc := !i :: !acc;
          incr i
        done;
        List.rev !acc
      in
      List.iter
        (fun off ->
          let rest =
            String.sub it.it_text (off + 7) (String.length it.it_text - off - 7)
          in
          let l () = it.it_line + line_of_offset it.it_text off - 1 in
          if String.length rest >= 5 && String.sub rest 0 5 = "State" then ()
          else
            match first_ident rest with
            | Some ("init", _) | Some ("full_init", _) -> ()
            | Some (f, _) -> add (l ()) enclosing (Random_source ("Random." ^ f))
            | None -> ())
        random_dots;
      if not (in_obs file) then
        List.iter
          (fun tok ->
            List.iter
              (fun l -> add l enclosing (Wall_clock tok))
              (occurrences tok))
          wall_clock_tokens;
      let sorted = List.exists (contains_token ~allow_dotted:true it.it_text) sort_tokens in
      if not sorted then
        List.iter
          (fun tok ->
            List.iter
              (fun l -> add l enclosing (Hash_order_iteration tok))
              (occurrences tok))
          [ "Hashtbl.iter"; "Hashtbl.fold" ];
      List.iter
        (fun tok ->
          List.iter
            (fun l -> add l enclosing (Exit_or_signal_handler tok))
            (occurrences tok))
        [ "at_exit"; "Sys.signal"; "Sys.set_signal" ])
    items;
  (* stable order, then disambiguate duplicate keys with #k suffixes *)
  let ordered =
    List.sort
      (fun (l1, n1, k1) (l2, n2, k2) ->
        match Int.compare l1 l2 with
        | 0 -> compare (kind_tag k1, n1) (kind_tag k2, n2)
        | c -> c)
      (List.rev !findings)
  in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (fun (line, name, kind) ->
      let base = kind_tag kind ^ ":" ^ name in
      let count = Option.value (Hashtbl.find_opt seen base) ~default:0 in
      Hashtbl.replace seen base (count + 1);
      let key = if count = 0 then base else Printf.sprintf "%s#%d" base (count + 1) in
      {
        file;
        line;
        name;
        key;
        kind;
        classification = None;
        reason = None;
        annotation = None;
      })
    ordered

(* ------------------------------------------------------------------ *)
(* Annotations: comment pragmas and the STATICCHECK.md table. *)

type table_row = {
  row_file : string;
  row_key : string;
  row_class : classification;
  row_reason : string;
}

let cells_of_row line =
  let parts = String.split_on_char '|' line in
  match parts with
  | "" :: rest | rest ->
      List.filteri (fun i _ -> i < List.length rest - 1) rest
      |> List.map String.trim

let parse_table text =
  let rows = ref [] and diags = ref [] in
  List.iteri
    (fun idx raw ->
      let t = String.trim raw in
      if String.length t > 0 && t.[0] = '|' then
        match cells_of_row t with
        | [ f; k; c; r ]
          when f <> "file" && f <> "" && not (String.for_all (fun ch -> ch = '-' || ch = ' ') f)
               && String.contains k ':' -> (
            match classification_of_string c with
            | Some cls ->
                rows :=
                  { row_file = f; row_key = k; row_class = cls; row_reason = r }
                  :: !rows
            | None ->
                diags :=
                  D.warning ~code:"SL056" ~subject:"STATICCHECK.md"
                    (Printf.sprintf
                       "row %d: %S is not a classification \
                        (immutable-after-init | per-call | \
                        shared-cache-needs-lock | nondeterministic)"
                       (idx + 1) c)
                  :: !diags)
        | _ -> ())
    (String.split_on_char '\n' text);
  (List.rev !rows, List.rev !diags)

let file_matches ~row_file file =
  row_file = file
  ||
  let n = String.length file and k = String.length row_file in
  k < n && String.sub file (n - k) k = row_file
  && (file.[n - k - 1] = '/' || file.[n - k - 1] = '\\')

(* A pragma annotates the nearest unannotated finding on its own line
   (trailing comment) or within the next three lines (comment above
   the binding). *)
let pragma_window = 3

let analyze ?(table = ([], [])) sources =
  let table_rows, table_diags = table in
  let all_findings = ref [] and diags = ref [ ] in
  let used_rows : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (file, text) ->
      let findings = scan_source ~file text in
      let _, pragmas = scrub_and_pragmas text in
      let findings = Array.of_list findings in
      (* pragma pass *)
      List.iter
        (fun p ->
          match classification_of_string p.p_word with
          | None ->
              diags :=
                D.warning ~code:"SL056" ~subject:file
                  (Printf.sprintf
                     "pragma at line %d: %S is not a classification \
                      (immutable-after-init | per-call | \
                      shared-cache-needs-lock | nondeterministic)"
                     p.p_line p.p_word)
                :: !diags
          | Some cls -> (
              let candidate = ref None in
              Array.iteri
                (fun i f ->
                  if
                    !candidate = None && f.annotation = None
                    && f.line >= p.p_line
                    && f.line <= p.p_line + pragma_window
                  then candidate := Some i)
                findings;
              match !candidate with
              | Some i ->
                  findings.(i) <-
                    {
                      (findings.(i)) with
                      classification = Some cls;
                      reason = (if p.p_rest = "" then None else Some p.p_rest);
                      annotation = Some Pragma;
                    }
              | None ->
                  diags :=
                    D.warning ~code:"SL056" ~subject:file
                      (Printf.sprintf
                         "stale pragma at line %d: no finding within %d \
                          line(s) to annotate"
                         p.p_line pragma_window)
                    :: !diags))
        pragmas;
      (* table pass *)
      Array.iteri
        (fun i f ->
          if f.annotation = None then
            match
              List.find_opt
                (fun r ->
                  file_matches ~row_file:r.row_file f.file
                  && r.row_key = f.key)
                table_rows
            with
            | Some r ->
                Hashtbl.replace used_rows (r.row_file, r.row_key) ();
                findings.(i) <-
                  {
                    f with
                    classification = Some r.row_class;
                    reason =
                      (if r.row_reason = "" then None else Some r.row_reason);
                    annotation = Some Table;
                  }
            | None -> ())
        findings;
      all_findings := Array.to_list findings :: !all_findings)
    sources;
  let findings = List.concat (List.rev !all_findings) in
  (* stale table rows *)
  let stale_rows =
    List.filter
      (fun r -> not (Hashtbl.mem used_rows (r.row_file, r.row_key)))
      table_rows
  in
  let stale_diags =
    List.map
      (fun r ->
        D.warning ~code:"SL056" ~subject:"STATICCHECK.md"
          (Printf.sprintf
             "stale annotation: no finding %s in %s (deleted binding, or \
              detector drift?)"
             r.row_key r.row_file))
      stale_rows
  in
  let unannotated_diags =
    List.filter_map
      (fun f ->
        match f.classification with
        | Some _ -> None
        | None ->
            Some
              (D.warning ~code:(code_of_kind f.kind) ~subject:f.file
                 (Printf.sprintf
                    "%s `%s` at line %d is not classified; add a \
                     (* staticcheck: <class> <reason> *) pragma or a \
                     STATICCHECK.md row with key %s"
                    (kind_describe f.kind) f.name f.line f.key)))
      findings
  in
  (findings, table_diags @ List.rev !diags @ stale_diags @ unannotated_diags)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let analyze_files ?(table_path = "STATICCHECK.md") ~src_dirs () =
  let table =
    match read_file table_path with
    | text -> parse_table text
    | exception Sys_error _ -> ([], [])
  in
  let missing, sources =
    List.fold_left
      (fun (missing, sources) dir ->
        if Sys.file_exists dir && Sys.is_directory dir then
          ( missing,
            sources
            @ List.filter_map
                (fun path ->
                  match read_file path with
                  | text -> Some (path, text)
                  | exception Sys_error _ -> None)
                (Source.ml_files_under dir) )
        else (dir :: missing, sources))
      ([], []) src_dirs
  in
  let findings, diags = analyze ~table sources in
  let missing_diags =
    List.rev_map
      (fun dir ->
        D.error ~code:"SL000" ~subject:dir
          "source directory not found (run from the repository root, or pass \
           --src)")
      missing
  in
  (findings, missing_diags @ diags)

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let schema_version = "slocal.staticcheck/1"

let finding_json f =
  let opt_str = function None -> Json.Null | Some s -> Json.String s in
  Json.Obj
    [
      ("file", Json.String f.file);
      ("line", Json.Int f.line);
      ("code", Json.String (code_of_kind f.kind));
      ("kind", Json.String (kind_tag f.kind));
      ("detail", Json.String (kind_detail f.kind));
      ("name", Json.String f.name);
      ("key", Json.String f.key);
      ( "class",
        opt_str (Option.map classification_to_string f.classification) );
      ("reason", opt_str f.reason);
      ( "annotation",
        opt_str
          (Option.map
             (function Pragma -> "pragma" | Table -> "table")
             f.annotation) );
    ]

let count_by proj findings =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun f ->
      match proj f with
      | None -> ()
      | Some k ->
          Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    findings;
  Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) tbl []
  |> List.sort compare

let report_json ~roots findings =
  let annotated =
    List.length (List.filter (fun f -> f.classification <> None) findings)
  in
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("roots", Json.List (List.map (fun r -> Json.String r) roots));
      ("findings", Json.List (List.map finding_json findings));
      ( "summary",
        Json.Obj
          [
            ("total", Json.Int (List.length findings));
            ("annotated", Json.Int annotated);
            ("unannotated", Json.Int (List.length findings - annotated));
            ( "by_code",
              Json.Obj (count_by (fun f -> Some (code_of_kind f.kind)) findings)
            );
            ( "by_class",
              Json.Obj
                (count_by
                   (fun f ->
                     Option.map classification_to_string f.classification)
                   findings) );
          ] );
    ]

let pp_inventory fmt findings =
  let truncate n s =
    if String.length s <= n then s else String.sub s 0 (n - 1) ^ "…"
  in
  Format.fprintf fmt "%-36s %5s %-6s %-28s %-24s %s@." "file" "line" "code"
    "finding" "class" "reason";
  List.iter
    (fun f ->
      Format.fprintf fmt "%-36s %5d %-6s %-28s %-24s %s@."
        (truncate 36 f.file) f.line (code_of_kind f.kind)
        (truncate 28 (kind_tag f.kind ^ ":" ^ f.name))
        (match f.classification with
        | Some c -> classification_to_string c
        | None -> "UNANNOTATED")
        (truncate 48 (Option.value f.reason ~default:"")))
    findings;
  let annotated =
    List.length (List.filter (fun f -> f.classification <> None) findings)
  in
  Format.fprintf fmt
    "%d finding(s): %d classified, %d unannotated@." (List.length findings)
    annotated
    (List.length findings - annotated)
