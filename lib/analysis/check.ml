open Slocal_formalism
module Lift = Supported_local.Lift
module D = Diagnostic

type entry = { code : string; severity : D.severity; title : string }

let code_table =
  [
    { code = "SL000"; severity = D.Error; title = "unparsable problem document" };
    { code = "SL001"; severity = D.Warning; title = "label declared but never used" };
    { code = "SL002"; severity = D.Warning; title = "label used on one side only (unusable on biregular supports)" };
    { code = "SL003"; severity = D.Error; title = "constraint has no configurations" };
    { code = "SL004"; severity = D.Warning; title = "duplicate or subsumed condensed configuration" };
    { code = "SL005"; severity = D.Warning; title = "non-canonical condensed syntax" };
    { code = "SL006"; severity = D.Error; title = "target support degree below the problem arity" };
    { code = "SL010"; severity = D.Error; title = "strength relation disagrees with independent recomputation" };
    { code = "SL011"; severity = D.Error; title = "strength relation not reflexive" };
    { code = "SL012"; severity = D.Error; title = "strength relation not transitive" };
    { code = "SL013"; severity = D.Error; title = "right-closed family is not the fixpoints of right-closure" };
    { code = "SL014"; severity = D.Info; title = "exhaustive right-closed enumeration skipped (large alphabet)" };
    { code = "SL020"; severity = D.Error; title = "lift alphabet is not the non-empty right-closed set family" };
    { code = "SL021"; severity = D.Error; title = "lift label meaning empty or not right-closed" };
    { code = "SL022"; severity = D.Error; title = "lift arity or metadata inconsistent" };
    { code = "SL023"; severity = D.Error; title = "lift configuration violates Definition 3.1" };
    { code = "SL024"; severity = D.Error; title = "lift constraint missing a Definition 3.1 configuration" };
    { code = "SL025"; severity = D.Info; title = "lift check skipped (budget)" };
    { code = "SL026"; severity = D.Error; title = "round elimination grounding inconsistent" };
    { code = "SL030"; severity = D.Error; title = "certificate does not match the stated inputs" };
    { code = "SL031"; severity = D.Error; title = "solvability certificate fails checker replay" };
    { code = "SL032"; severity = D.Error; title = "det_rounds inconsistent with min {2k, (g-4)/2}" };
    { code = "SL033"; severity = D.Warning; title = "certificate undecided (solver budget exhausted)" };
    { code = "SL034"; severity = D.Info; title = "lift solvable: no lower bound from this support" };
    { code = "SL035"; severity = D.Error; title = "recorded support statistics differ from the support" };
    { code = "SL036"; severity = D.Error; title = "unsolvability certificate refuted by re-search" };
    { code = "SL037"; severity = D.Info; title = "unsolvability re-search undecided within audit budget" };
    { code = "SL040"; severity = D.Error; title = "trace file empty or fully damaged" };
    { code = "SL041"; severity = D.Warning; title = "telemetry metric name not documented in DESIGN.md" };
    { code = "SL050"; severity = D.Warning; title = "module-scope mutable binding not classified" };
    { code = "SL051"; severity = D.Warning; title = "module-scope lazy value or mutable type not classified" };
    { code = "SL052"; severity = D.Warning; title = "nondeterministic PRNG use not classified" };
    { code = "SL053"; severity = D.Warning; title = "wall-clock read outside lib/obs not classified" };
    { code = "SL054"; severity = D.Warning; title = "hash-order-dependent iteration not classified" };
    { code = "SL055"; severity = D.Warning; title = "exit or signal handler not classified" };
    { code = "SL056"; severity = D.Warning; title = "stale or malformed staticcheck annotation" };
    { code = "SL057"; severity = D.Warning; title = "slp lint: unused label or within-line duplicate configuration" };
  ]

let find_entry code = List.find_opt (fun e -> e.code = code) code_table

(* Right-closed set enumeration is exponential in the alphabet; above
   this size the minimal-lift structural check is skipped. *)
let max_lift_alphabet = 14

let lint_problem ?delta ?r ?(check_lift = true) (p : Problem.t) =
  let base =
    Invariants.problem_checks ?delta ?r p @ Invariants.diagram_checks p
  in
  let lift_diags =
    if not check_lift then []
    else if Alphabet.size p.Problem.alphabet > max_lift_alphabet then
      [
        D.info ~code:"SL025" ~subject:p.Problem.name
          (Printf.sprintf
             "minimal-lift structural check skipped: alphabet size %d > %d"
             (Alphabet.size p.Problem.alphabet)
             max_lift_alphabet);
      ]
    else
      let delta = Option.value delta ~default:(Problem.d_white p)
      and r = Option.value r ~default:(Problem.d_black p) in
      if delta < Problem.d_white p || r < Problem.d_black p then
        (* SL006 already reported by problem_checks. *)
        []
      else Invariants.lift_checks (Lift.lift ~delta ~r p)
  in
  base @ lift_diags

let lint_file ?delta ?r path =
  let problem, source_diags = Source.lint_file path in
  match problem with
  | None -> source_diags
  | Some p -> source_diags @ lint_problem ?delta ?r p

let lint_re_chain p ~steps =
  let diags = ref [] in
  let current = ref p in
  for _ = 1 to steps do
    let g1 = Re_step.r_black !current in
    diags := !diags @ Invariants.grounding_checks ~prev:!current g1;
    let g2 = Re_step.r_white g1.Re_step.problem in
    diags := !diags @ Invariants.grounding_checks ~prev:g1.Re_step.problem g2;
    current := g2.Re_step.problem
  done;
  !diags

let audit ~support ~last_problem ~k ?recheck_budget res =
  Audit.audit_result ~support ~last_problem ~k ?recheck_budget res
  @ Invariants.lift_checks res.Supported_local.Framework.lift

let pp_code_table fmt () =
  Format.fprintf fmt "%-7s %-8s %s@." "code" "severity" "meaning";
  List.iter
    (fun e ->
      Format.fprintf fmt "%-7s %-8s %s@." e.code
        (D.severity_to_string e.severity)
        e.title)
    code_table
