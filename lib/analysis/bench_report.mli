(** Parsing and gate evaluation for [slocal.bench/1] documents.

    The bench harness ([bench/main.ml]) writes these reports; its
    [compare], [report] and [history] subcommands extract experiments
    and evaluate the regression gates through this module, so the
    forward-compatibility contract — reports written before the
    allocation fields existed are skipped-and-noted, never a crash —
    is unit-testable from the test suite.

    Two gates exist.  The [re.enum_nodes] gate allows
    {!gate_ratio} (1.10x) because the experiment mix varies; the
    allocation gate allows only {!alloc_gate_ratio} (1.02x) because
    sequential-kernel allocation is deterministic for a fixed seed
    (pinned down by the allocation-determinism proptest), with
    {!alloc_exempt_ids} carved out for the multi-domain experiments
    whose coordinating-domain allocation depends on work-stealing
    order. *)

val schema_version : string
(** ["slocal.bench/1"].  The per-experiment [alloc_b] / [minor_n] /
    [major_n] fields are additive: older reports simply lack them. *)

type experiment = {
  ex_id : string;
  ex_wall_ns : int option;
  ex_alloc_b : int option;
      (** Bytes allocated by the experiment; [None] on reports from
          older writers. *)
  ex_minor_n : int option;
  ex_major_n : int option;
  ex_counters : (string * int) list;
}

val experiments_of : Slocal_obs.Json.t -> experiment list
(** In file order; entries without a string [id] are dropped. *)

val enum_nodes : Slocal_obs.Json.t -> (string * int) list
(** [(id, re.enum_nodes)] for experiments that report the counter. *)

val benchmarks_of : Slocal_obs.Json.t -> (string * float) list

val gate_ratio : float
(** [1.10] — the [re.enum_nodes] gate. *)

val alloc_gate_ratio : float
(** [1.02] — the allocation gate. *)

val alloc_exempt_ids : string list
(** Experiments never gated on allocation (parallel harnesses). *)

val ratio_of : int -> int -> float
(** [ratio_of cur base], with [base] clamped to at least 1. *)

val breaches : ratio:float -> base:int -> cur:int -> bool

type alloc_check = {
  ac_id : string;
  ac_base : int;
  ac_cur : int;
  ac_exempt : bool;  (** Reported but not gated. *)
  ac_breach : bool;  (** [cur > base * alloc_gate_ratio]; never for exempt. *)
}

type alloc_result = {
  checks : alloc_check list;
      (** Shared experiments carrying [alloc_b] on both sides. *)
  skipped : string list;
      (** Shared experiments where at least one side predates the
          alloc fields — noted, never an error. *)
}

val alloc_gate : baseline:Slocal_obs.Json.t -> current:Slocal_obs.Json.t -> alloc_result
(** Evaluate the allocation gate over the experiments shared by two
    reports. *)
