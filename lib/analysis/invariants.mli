(** Invariant checkers for the formalism layer.

    Each function re-derives a structural property of the paper from
    first principles — independently of the code path that originally
    computed it — and reports any disagreement as diagnostics:

    - {!problem_checks}: well-formedness of a problem (unused labels,
      labels unusable on biregular supports, empty constraints, target
      support degrees below the arities);
    - {!diagram_checks}: the strength relation of Definition 2.x is
      recomputed by direct substitution and compared against
      {!Slocal_formalism.Diagram}; reflexivity, transitivity, and the
      fixpoint property of the right-closed set family are asserted;
    - {!lift_checks}: the lift alphabet must be exactly the non-empty
      right-closed sets of the black diagram (Definition 3.1), every
      configuration must satisfy the universal/existential choice
      conditions, and — within a budget — no satisfying configuration
      may be missing;
    - {!grounding_checks}: a round elimination step's grounding must
      only mention generated labels and carry non-empty, distinct
      label-set meanings.

    All checkers are pure; they never raise on malformed input, they
    report. *)

open Slocal_formalism

val problem_checks : ?delta:int -> ?r:int -> Problem.t -> Diagnostic.t list
(** SL001 (unused label), SL002 (one-sided label), SL003 (empty
    constraint), SL006 (target degree below arity, only when [delta] /
    [r] are given). *)

val diagram_checks : Problem.t -> Diagnostic.t list
(** SL010 (relation mismatch vs independent recomputation), SL011
    (reflexivity), SL012 (transitivity), SL013 (right-closed family not
    the fixpoints of right-closure), SL014 (info: exhaustive
    enumeration skipped on large alphabets).  Both the white and the
    black diagram are checked. *)

val lift_checks : ?completeness_budget:int -> Supported_local.Lift.t -> Diagnostic.t list
(** SL020 (alphabet is not the right-closed set family), SL021
    (meaning empty / not right-closed), SL022 (arity or metadata
    inconsistency), SL023 (configuration violating Definition 3.1),
    SL024 (missing configuration), SL025 (info: completeness check
    skipped because the candidate space exceeds
    [completeness_budget], default 200_000). *)

val grounding_checks : prev:Problem.t -> Re_step.grounding -> Diagnostic.t list
(** SL026: meanings array inconsistent with the generated alphabet,
    empty or duplicate meanings, or meanings mentioning labels outside
    the previous alphabet. *)

val config_string : Alphabet.t -> Slocal_util.Multiset.t -> string
(** A configuration in the condensed syntax (label names joined by
    spaces) — used for diagnostic locations. *)
