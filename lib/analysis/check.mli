(** The check registry and the top-level lint/audit entry points.

    [slocal lint] and [slocal audit] are thin wrappers over this
    module; tests drive it directly.  The {!code_table} is the single
    source of truth for the diagnostic catalogue (the README table is
    generated from the same data via [slocal lint --codes]). *)

open Slocal_formalism

type entry = {
  code : string;
  severity : Diagnostic.severity;
  title : string;  (** One line, suitable for a table. *)
}

val code_table : entry list
(** Every code the analysis can emit, ascending. *)

val find_entry : string -> entry option

val lint_problem :
  ?delta:int -> ?r:int -> ?check_lift:bool -> Problem.t -> Diagnostic.t list
(** Well-formedness + diagram soundness + (when [check_lift], the
    default) the structural invariants of the minimal lift
    [lift_{Δ,r}] with [Δ]/[r] defaulting to the problem's own arities.
    Lift construction is skipped with an SL025 info when the alphabet
    is too large to enumerate right-closed sets. *)

val lint_file : ?delta:int -> ?r:int -> string -> Diagnostic.t list
(** Source-level lints (SL000/SL004/SL005) plus, when the file parses,
    everything {!lint_problem} reports. *)

val lint_re_chain : Problem.t -> steps:int -> Diagnostic.t list
(** Apply [steps] rounds of the RE operator, checking the grounding
    invariants (SL026) of every intermediate [R]/[R̄] application. *)

val audit :
  support:Slocal_graph.Bipartite.t ->
  last_problem:Problem.t ->
  k:int ->
  ?recheck_budget:int ->
  Supported_local.Framework.result ->
  Diagnostic.t list
(** {!Audit.audit_result} plus {!lint_problem} of the lifted problem
    (a fabricated result should not escape because only its
    certificate was checked). *)

val pp_code_table : Format.formatter -> unit -> unit
(** Render {!code_table} as an aligned text table. *)
