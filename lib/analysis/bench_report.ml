(* Parsing and gate evaluation for slocal.bench/1 reports.

   The bench harness writes these documents and its compare / report /
   history subcommands gate on them; the extraction and gate logic
   lives here so the forward-compatibility contract (older reports
   lacking the allocation fields must skip-and-note, never crash) is
   unit-testable without running an experiment. *)

module Json = Slocal_obs.Json

let schema_version = "slocal.bench/1"

type experiment = {
  ex_id : string;
  ex_wall_ns : int option;
  ex_alloc_b : int option;
  ex_minor_n : int option;
  ex_major_n : int option;
  ex_counters : (string * int) list;
}

let experiments_of json =
  match Json.member "experiments" json with
  | None -> []
  | Some exps ->
      List.filter_map
        (fun e ->
          match Option.bind (Json.member "id" e) Json.as_string with
          | None -> None
          | Some id ->
              let int k = Option.bind (Json.member k e) Json.as_int in
              let counters =
                match Option.bind (Json.member "counters" e) Json.as_obj with
                | None -> []
                | Some kvs ->
                    List.filter_map
                      (fun (k, v) ->
                        Option.map (fun n -> (k, n)) (Json.as_int v))
                      kvs
              in
              Some
                {
                  ex_id = id;
                  ex_wall_ns = int "wall_ns";
                  ex_alloc_b = int "alloc_b";
                  ex_minor_n = int "minor_n";
                  ex_major_n = int "major_n";
                  ex_counters = counters;
                })
        (Option.value ~default:[] (Json.as_list exps))

let enum_nodes json =
  List.filter_map
    (fun e ->
      Option.map
        (fun n -> (e.ex_id, n))
        (List.assoc_opt "re.enum_nodes" e.ex_counters))
    (experiments_of json)

let benchmarks_of json =
  match Json.member "benchmarks" json with
  | None -> []
  | Some l ->
      List.filter_map
        (fun b ->
          match
            ( Option.bind (Json.member "name" b) Json.as_string,
              Option.bind (Json.member "ns_per_run" b) Json.as_float )
          with
          | Some name, Some ns -> Some (name, ns)
          | _ -> None)
        (Option.value ~default:[] (Json.as_list l))

(* The enum-nodes CI gate: current may not exceed baseline by more
   than 10% (the counter is deterministic per experiment but the
   experiment set varies between quick and full runs). *)
let gate_ratio = 1.10

(* The allocation gate is far tighter: bytes allocated by the
   sequential kernels are deterministic for a fixed seed (the
   allocation-determinism proptest pins this down), so 2% headroom is
   pure safety margin for runtime-version drift. *)
let alloc_gate_ratio = 1.02

(* Experiments whose harness fans work out over domains: the
   coordinating domain's allocation depends on work-stealing order, so
   they are exempt from the alloc gate (reported, never gated). *)
let alloc_exempt_ids = [ "E-PAR"; "E-SCALE" ]

let ratio_of cur base = float_of_int cur /. float_of_int (max 1 base)
let breaches ~ratio ~base ~cur = float_of_int cur > float_of_int base *. ratio

type alloc_check = {
  ac_id : string;
  ac_base : int;
  ac_cur : int;
  ac_exempt : bool;
  ac_breach : bool;  (* always false when exempt *)
}

type alloc_result = {
  checks : alloc_check list;  (* shared experiments with data on both sides *)
  skipped : string list;
      (* shared experiments where at least one report predates the
         alloc fields — skip-and-note, never a failure *)
}

let alloc_gate ~baseline ~current =
  let cur_exps = experiments_of current in
  let checks = ref [] and skipped = ref [] in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.ex_id = b.ex_id) cur_exps with
      | None -> ()
      | Some c -> (
          match (b.ex_alloc_b, c.ex_alloc_b) with
          | Some base, Some cur ->
              let exempt = List.mem b.ex_id alloc_exempt_ids in
              checks :=
                {
                  ac_id = b.ex_id;
                  ac_base = base;
                  ac_cur = cur;
                  ac_exempt = exempt;
                  ac_breach =
                    (not exempt)
                    && breaches ~ratio:alloc_gate_ratio ~base ~cur;
                }
                :: !checks
          | _ -> skipped := b.ex_id :: !skipped))
    (experiments_of baseline);
  { checks = List.rev !checks; skipped = List.rev !skipped }
