(* BFS from a source; whenever a non-tree edge joins two visited
   vertices, [dist u + dist v + 1] bounds a cycle length, and the
   minimum of these bounds over all sources is the girth. *)

module Telemetry = Slocal_obs.Telemetry

let c_bfs_runs = Telemetry.counter "girth.bfs_runs"

let bfs_cycle_bound g src ~stop_below =
  Telemetry.incr c_bfs_runs;
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent_edge = Array.make n (-1) in
  let best = ref max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  (try
     while not (Queue.is_empty q) do
       let v = Queue.pop q in
       List.iter
         (fun e ->
           let w = Graph.other_end g e v in
           if e <> parent_edge.(v) then
             if dist.(w) = max_int then begin
               dist.(w) <- dist.(v) + 1;
               parent_edge.(w) <- e;
               Queue.push w q
             end
             else begin
               let len = dist.(v) + dist.(w) + 1 in
               if len < !best then best := len;
               if !best < stop_below then raise Exit
             end)
         (Graph.incident g v)
     done
   with Exit -> ());
  !best

let shortest_cycle_through g v =
  let b = bfs_cycle_bound g v ~stop_below:0 in
  if b = max_int then None else Some b

let girth g =
  let best = ref max_int in
  for v = 0 to Graph.n g - 1 do
    let b = bfs_cycle_bound g v ~stop_below:0 in
    if b < !best then best := b
  done;
  if !best = max_int then None else Some !best

let girth_at_least g k =
  let ok = ref true in
  (try
     for v = 0 to Graph.n g - 1 do
       if bfs_cycle_bound g v ~stop_below:k < k then begin
         ok := false;
         raise Exit
       end
     done
   with Exit -> ());
  !ok

(* Reconstruct some shortest cycle: rerun the BFS recording parents and
   rebuild the two root paths at the first closing edge matching the
   optimal length, then trim the closed walk to a simple cycle. *)
let shortest_cycle g =
  match girth g with
  | None -> None
  | Some target ->
      let n = Graph.n g in
      let found = ref None in
      let try_source src =
        let dist = Array.make n max_int in
        let parent = Array.make n (-1) in
        let parent_edge = Array.make n (-1) in
        let q = Queue.create () in
        dist.(src) <- 0;
        Queue.push src q;
        try
          while not (Queue.is_empty q) do
            let v = Queue.pop q in
            List.iter
              (fun e ->
                let w = Graph.other_end g e v in
                if e <> parent_edge.(v) then
                  if dist.(w) = max_int then begin
                    dist.(w) <- dist.(v) + 1;
                    parent.(w) <- v;
                    parent_edge.(w) <- e;
                    Queue.push w q
                  end
                  else if dist.(v) + dist.(w) + 1 = target then begin
                    let rec path u = if u = src then [ src ] else u :: path parent.(u) in
                    let walk = List.rev (path v) @ path w in
                    found := Some walk;
                    raise Exit
                  end)
              (Graph.incident g v)
          done
        with Exit -> ()
      in
      let v = ref 0 in
      while !found = None && !v < n do
        try_source !v;
        incr v
      done;
      (match !found with
      | None -> None
      | Some walk ->
          (* Trim the closed walk to a simple cycle: keep the segment
             between the two occurrences of the first repeated vertex. *)
          let tbl = Hashtbl.create 16 in
          let rec scan i = function
            | [] -> None
            | x :: rest -> (
                match Hashtbl.find_opt tbl x with
                | Some j -> Some (j, i)
                | None ->
                    Hashtbl.add tbl x i;
                    scan (i + 1) rest)
          in
          (match scan 0 (walk @ [ List.hd walk ]) with
          | None -> Some walk
          | Some (j, i) ->
              let seg = List.filteri (fun k _ -> k >= j && k < i) (walk @ [ List.hd walk ]) in
              Some seg))
