module Prng = Slocal_util.Prng
module Telemetry = Slocal_obs.Telemetry

let c_gen_attempts = Telemetry.counter "graph.gen_attempts"
let c_repair_sweeps = Telemetry.counter "graph.repair_sweeps"
let c_girth_swaps = Telemetry.counter "graph.girth_swaps"
let g_girth_achieved = Telemetry.gauge "graph.girth_achieved"
let g_independence_upper = Telemetry.gauge "graph.independence_upper"

let cycle n =
  if n < 3 then invalid_arg "Graph_gen.cycle: need n >= 3";
  Graph.create ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  if n < 1 then invalid_arg "Graph_gen.path";
  Graph.create ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n !edges

let complete_bipartite a b =
  let edges = ref [] in
  for w = 0 to a - 1 do
    for bl = 0 to b - 1 do
      edges := (w, bl) :: !edges
    done
  done;
  Bipartite.of_sides ~nw:a ~nb:b !edges

let star k =
  Graph.create ~n:(k + 1) (List.init k (fun i -> (0, i + 1)))

let hypercube d =
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then edges := (v, w) :: !edges
    done
  done;
  Graph.create ~n !edges

let grid a b =
  let idx i j = (i * b) + j in
  let edges = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      if j + 1 < b then edges := (idx i j, idx i (j + 1)) :: !edges;
      if i + 1 < a then edges := (idx i j, idx (i + 1) j) :: !edges
    done
  done;
  Graph.create ~n:(a * b) !edges

let torus a b =
  if a < 3 || b < 3 then invalid_arg "Graph_gen.torus: need sides >= 3";
  let idx i j = (i * b) + j in
  let edges = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      edges := (idx i j, idx i ((j + 1) mod b)) :: !edges;
      edges := (idx i j, idx ((i + 1) mod a) j) :: !edges
    done
  done;
  Graph.create ~n:(a * b) !edges

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  Graph.create ~n:10 (outer @ spokes @ inner)

let random_tree rng n =
  if n < 1 then invalid_arg "Graph_gen.random_tree";
  if n = 1 then Graph.create ~n:1 []
  else if n = 2 then Graph.create ~n:2 [ (0, 1) ]
  else begin
    let prufer = Array.init (n - 2) (fun _ -> Prng.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) prufer;
    let edges = ref [] in
    let module H = Set.Make (Int) in
    let leaves = ref H.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := H.add v !leaves
    done;
    Array.iter
      (fun v ->
        let leaf = H.min_elt !leaves in
        leaves := H.remove leaf !leaves;
        edges := (leaf, v) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := H.add v !leaves)
      prufer;
    (match H.elements !leaves with
    | [ a; b ] -> edges := (a, b) :: !edges
    | _ -> assert false);
    Graph.create ~n !edges
  end

(* Configuration model with swap repair: pair up d stubs per vertex
   uniformly, then fix self-loops and parallel edges by swapping the
   offending pair with a random other pair (a degree-preserving
   operation on the multigraph).  Outright rejection has acceptance
   probability ~e^{-d²/4}, hopeless beyond small d; repair converges in
   a handful of sweeps. *)
let pairing_to_simple ?(oriented = false) rng ~pairs ~endpoint ~max_sweeps =
  let npairs = Array.length pairs in
  (* Count duplicates via a table instead of a quadratic scan. *)
  let edge_key p =
    let u, v = pairs.(p) in
    let a = endpoint u and b = endpoint v in
    if a < b then (a, b) else (b, a)
  in
  let rebuild_counts () =
    let tbl = Hashtbl.create (2 * npairs) in
    for p = 0 to npairs - 1 do
      let k = edge_key p in
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0)
    done;
    tbl
  in
  let sweeps = ref 0 in
  let ok = ref false in
  while (not !ok) && !sweeps < max_sweeps do
    incr sweeps;
    Telemetry.incr c_repair_sweeps;
    let counts = rebuild_counts () in
    let bad_list = ref [] in
    for p = 0 to npairs - 1 do
      let u, v = pairs.(p) in
      let a, b = edge_key p in
      if endpoint u = endpoint v || a = b || Hashtbl.find counts (a, b) > 1 then
        bad_list := p :: !bad_list
    done;
    if !bad_list = [] then ok := true
    else
      List.iter
        (fun p ->
          let q = Prng.int rng npairs in
          if q <> p then begin
            let u, v = pairs.(p) and x, y = pairs.(q) in
            (* In oriented mode (bipartite pairings) only the second
               components may be exchanged, preserving the sides. *)
            if oriented || Prng.bool rng then begin
              pairs.(p) <- (u, y);
              pairs.(q) <- (x, v)
            end
            else begin
              pairs.(p) <- (u, x);
              pairs.(q) <- (y, v)
            end
          end)
        !bad_list
  done;
  !ok

(* Deterministic d-regular circulant: offsets 1..d/2, plus the
   antipodal offset n/2 when d is odd (n even then, by parity). *)
let circulant n d =
  let edges = ref [] in
  for o = 1 to d / 2 do
    for i = 0 to n - 1 do
      edges := (i, (i + o) mod n) :: !edges
    done
  done;
  if d mod 2 = 1 then
    for i = 0 to (n / 2) - 1 do
      edges := (i, i + (n / 2)) :: !edges
    done;
  Graph.create ~n !edges

(* Degree-preserving double-edge-swap walk: mixes a deterministic
   regular graph towards a near-uniform random one.  Used as the
   fallback when configuration-model repair stalls (mid-density
   instances). *)
let mcmc_randomize rng g ~steps =
  let n = Graph.n g in
  let arr = Graph.edges g in
  let m = Array.length arr in
  let present = Hashtbl.create (2 * m) in
  Array.iter (fun e -> Hashtbl.replace present e ()) arr;
  let norm u v = if u < v then (u, v) else (v, u) in
  for _ = 1 to steps do
    let i = Prng.int rng m and j = Prng.int rng m in
    if i <> j then begin
      let a, b = arr.(i) in
      let c, d = arr.(j) in
      let c, d = if Prng.bool rng then (c, d) else (d, c) in
      if a <> c && a <> d && b <> c && b <> d then begin
        let e1 = norm a c and e2 = norm b d in
        if (not (Hashtbl.mem present e1)) && not (Hashtbl.mem present e2) then begin
          Hashtbl.remove present arr.(i);
          Hashtbl.remove present arr.(j);
          Hashtbl.replace present e1 ();
          Hashtbl.replace present e2 ();
          arr.(i) <- e1;
          arr.(j) <- e2
        end
      end
    end
  done;
  Graph.create ~n (Array.to_list arr)

let complement g =
  let n = Graph.n g in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.mem_edge g u v) then edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n !edges

let rec random_regular rng ~n ~d =
  if n * d mod 2 <> 0 then invalid_arg "Graph_gen.random_regular: n*d must be even";
  if d >= n then invalid_arg "Graph_gen.random_regular: need d < n";
  if d = 0 then Graph.create ~n []
  else if 2 * d > n - 1 then
    (* Dense regime: the configuration model cannot be repaired into a
       simple graph efficiently; generate the sparse complement. *)
    complement (random_regular rng ~n ~d:(n - 1 - d))
  else begin
    let attempt max_sweeps =
      Telemetry.incr c_gen_attempts;
      let stubs = Array.init (n * d) (fun i -> i) in
      Prng.shuffle rng stubs;
      let pairs =
        Array.init (n * d / 2) (fun i -> (stubs.(2 * i), stubs.((2 * i) + 1)))
      in
      if pairing_to_simple rng ~pairs ~endpoint:(fun s -> s / d) ~max_sweeps
      then
        Some
          (Graph.create ~n
             (Array.to_list (Array.map (fun (u, v) -> (u / d, v / d)) pairs)))
      else None
    in
    (* A few configuration-model attempts; in the mid-density regime
       where repair stalls, fall back to a randomized circulant (exact
       degrees guaranteed, near-uniform after the swap walk). *)
    let rec go tries =
      if tries > 8 then
        mcmc_randomize rng (circulant n d) ~steps:(20 * n * d)
      else
        match attempt (200 * (1 + tries)) with
        | Some g -> g
        | None -> go (tries + 1)
    in
    go 0
  end

let bipartite_complement b ~nw ~nb =
  let g = Bipartite.graph b in
  let edges = ref [] in
  for w = 0 to nw - 1 do
    for bl = 0 to nb - 1 do
      if not (Graph.mem_edge g w (nw + bl)) then edges := (w, bl) :: !edges
    done
  done;
  Bipartite.of_sides ~nw ~nb !edges

let rec random_biregular rng ~nw ~nb ~dw ~db =
  if nw * dw <> nb * db then
    invalid_arg "Graph_gen.random_biregular: stub counts differ";
  if dw > nb || db > nw then
    invalid_arg "Graph_gen.random_biregular: degree exceeds other side";
  if dw = 0 then Bipartite.of_sides ~nw ~nb []
  else if 2 * dw > nb then
    (* Dense regime: build the complement inside K_{nw,nb}. *)
    bipartite_complement
      (random_biregular rng ~nw ~nb ~dw:(nb - dw) ~db:(nw - db))
      ~nw ~nb
  else begin
  let m = nw * dw in
  let attempt () =
    Telemetry.incr c_gen_attempts;
    (* White stub i belongs to white i/dw; black stubs are encoded with
       an offset so that [endpoint] separates the sides. *)
    let black_stubs = Array.init m (fun i -> m + i) in
    Prng.shuffle rng black_stubs;
    let pairs = Array.init m (fun i -> (i, black_stubs.(i))) in
    let endpoint s = if s < m then s / dw else nw + ((s - m) / db) in
    if pairing_to_simple ~oriented:true rng ~pairs ~endpoint
         ~max_sweeps:2000
    then
      Some
        (Bipartite.of_sides ~nw ~nb
           (Array.to_list
              (Array.map (fun (w, b) -> (w / dw, (b - m) / db)) pairs)))
    else None
  in
  let rec go tries =
    if tries > 200 then failwith "random_biregular: repair failed"
    else match attempt () with Some g -> g | None -> go (tries + 1)
  in
  go 0
  end

(* One degree-preserving 2-swap targeting an edge of a shortest cycle:
   replace {u,v}, {x,y} by {u,x}, {v,y} when that keeps the graph
   simple.  Swaps preserve the degree sequence. *)
let try_swap rng g =
  match Girth.shortest_cycle g with
  | None | Some [] -> None
  | Some (c0 :: rest) ->
      let cyc = Array.of_list (c0 :: rest) in
      let k = Array.length cyc in
      let i = Prng.int rng k in
      let u = cyc.(i) and v = cyc.((i + 1) mod k) in
      let m = Graph.m g in
      let rec pick tries =
        if tries = 0 then None
        else begin
          let e = Prng.int rng m in
          let x, y = Graph.edge g e in
          let x, y = if Prng.bool rng then (x, y) else (y, x) in
          if x = u || x = v || y = u || y = v then pick (tries - 1)
          else if Graph.mem_edge g u x || Graph.mem_edge g v y then pick (tries - 1)
          else Some (x, y)
        end
      in
      (match pick 64 with
      | None -> None
      | Some (x, y) ->
          let old1 = if u < v then (u, v) else (v, u) in
          let old2 = if x < y then (x, y) else (y, x) in
          let keep (a, b) =
            let e = if a < b then (a, b) else (b, a) in
            e <> old1 && e <> old2
          in
          let edges =
            Array.to_list (Graph.edges g) |> List.filter keep
          in
          Some (Graph.create ~n:(Graph.n g) ((u, x) :: (v, y) :: edges)))

let improve_girth rng g ~min_girth ~max_steps =
  let girth_val g = match Girth.girth g with None -> max_int | Some x -> x in
  let rec go g best best_girth steps =
    if steps = 0 || girth_val g >= min_girth then
      if girth_val g >= best_girth then g else best
    else
      match try_swap rng g with
      | None -> if girth_val g >= best_girth then g else best
      | Some g' ->
          Telemetry.incr c_girth_swaps;
          let bg = girth_val g' in
          if bg >= best_girth then go g' g' bg (steps - 1)
          else go g' best best_girth (steps - 1)
  in
  go g g (girth_val g) max_steps

let greedy_matching_size g =
  let n = Graph.n g in
  let used = Array.make n false in
  let count = ref 0 in
  Array.iter
    (fun (u, v) ->
      if (not used.(u)) && not used.(v) then begin
        used.(u) <- true;
        used.(v) <- true;
        incr count
      end)
    (Graph.edges g);
  !count

type certified = {
  graph : Graph.t;
  girth : int option;
  independence_upper : int;
  independence_exact : bool;
}

let high_girth_low_independence rng ~n ~d ?min_girth () =
  Telemetry.span "graph.high_girth_low_independence" @@ fun () ->
  if d < 2 then invalid_arg "high_girth_low_independence: need d >= 2";
  let n = if n * d mod 2 = 0 then n else n + 1 in
  let min_girth =
    match min_girth with
    | Some g -> g
    | None ->
        let lg = log (float_of_int n) /. log (float_of_int (max 2 d)) in
        max 5 (int_of_float (ceil lg))
  in
  let g = random_regular rng ~n ~d in
  let g = improve_girth rng g ~min_girth ~max_steps:(50 * n) in
  let girth = Girth.girth g in
  let exact_budget = if n <= 64 then 5_000_000 else 200_000 in
  let independence_upper, independence_exact =
    match Independence.exact ~max_nodes:exact_budget g with
    | Some alpha -> (alpha, true)
    | None ->
        (* α(G) <= n - ν(G) <= n - (greedy matching size). *)
        (n - greedy_matching_size g, false)
  in
  Telemetry.set g_girth_achieved (Option.value girth ~default:0);
  Telemetry.set g_independence_upper independence_upper;
  { graph = g; girth; independence_upper; independence_exact }

let double_cover = Bipartite.double_cover
