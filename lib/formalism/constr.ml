module Multiset = Slocal_util.Multiset
module Config_key = Slocal_util.Config_key
module Telemetry = Slocal_obs.Telemetry
module Pool = Slocal_obs.Pool

let c_memo_hits = Telemetry.counter "constr.memo_hits"
let c_memo_misses = Telemetry.counter "constr.memo_misses"

module Config_set = Set.Make (struct
  type t = Multiset.t

  let compare = Multiset.compare
end)

(* staticcheck: shared-cache-needs-lock per-constraint memo tables are filled on demand; [memo_mu] is held across every memo lookup+store while Pool.parallel_active, and the down slots publish through Atomic *)
type t = {
  arity : int;
  configs : Config_set.t;
  bits : int;
      (* Key width for the packed-configuration encoding: enough bits
         for the largest label appearing in a configuration.  All keys
         of one constraint (membership, down-closures) use it. *)
  member : unit Config_key.Tbl.t;
  (* Downward closure by size, built lazily: down.(k) holds the keys of
     all size-k sub-multisets of configurations.  Built into a fresh
     table and published with one [Atomic.set], so concurrent readers
     see either [None] (and build their own copy — a benign duplicate,
     last store wins, no counters involved) or a complete table that
     is immutable from then on. *)
  down : unit Config_key.Tbl.t option Atomic.t array;
  (* Memoized quantified-choice queries, one table per quantifier,
     keyed by the canonicalized position sets (each set sorted and
     deduplicated, the positions sorted — the answers only depend on
     the multiset of position sets). *)
  memo_exists : (int list list, bool) Hashtbl.t;
  memo_for_all : (int list list, bool) Hashtbl.t;
  memo_exists_partial : (int list list, bool) Hashtbl.t;
  memo_for_all_partial : (int list list, bool) Hashtbl.t;
  (* Taken around every memo lookup+compute+store — but only while a
     pool region is open ([Pool.parallel_active]; one atomic load on
     the sequential path).  Holding it across the compute keeps the
     memo accounting schedule-independent: the miss count is exactly
     the number of distinct canonical keys, the hit count exactly the
     remaining queries, the same totals as a sequential run. *)
  memo_mu : Mutex.t;
}

let key t c = Config_key.of_multiset ~bits:t.bits c

let make ~arity config_list =
  List.iter
    (fun c ->
      if Multiset.size c <> arity then
        invalid_arg "Constr.make: configuration has wrong size")
    config_list;
  let configs = Config_set.of_list config_list in
  let label_bound =
    Config_set.fold
      (fun c acc ->
        List.fold_left (fun acc l -> max acc (l + 1)) acc (Multiset.to_list c))
      configs 1
  in
  let bits = Config_key.bits_for label_bound in
  let member = Config_key.Tbl.create (max 16 (Config_set.cardinal configs)) in
  Config_set.iter
    (fun c ->
      Config_key.Tbl.replace member (Config_key.of_multiset ~bits c) ())
    configs;
  {
    arity;
    configs;
    bits;
    member;
    down = Array.init (arity + 1) (fun _ -> Atomic.make None);
    memo_exists = Hashtbl.create 64;
    memo_for_all = Hashtbl.create 64;
    memo_exists_partial = Hashtbl.create 64;
    memo_for_all_partial = Hashtbl.create 64;
    memo_mu = Mutex.create ();
  }

let arity t = t.arity
let configs t = Config_set.elements t.configs
let size t = Config_set.cardinal t.configs
let mem c t = Config_key.Tbl.mem t.member (key t c)

let down_closure t k =
  match Atomic.get t.down.(k) with
  | Some s -> s
  | None ->
      let s = Config_key.Tbl.create 64 in
      Config_set.iter
        (fun c ->
          List.iter
            (fun sub -> Config_key.Tbl.replace s (key t sub) ())
            (Multiset.sub_multisets k c))
        t.configs;
      Atomic.set t.down.(k) (Some s);
      s

let extendable partial t =
  let k = Multiset.size partial in
  if k > t.arity then false
  else if k = t.arity then mem partial t
  else Config_key.Tbl.mem (down_closure t k) (key t partial)

(* Quantified-choice tests.  Positions are processed one at a time; the
   accumulated partial multiset is pruned through [extendable].  Each
   query is memoized per constraint under its canonical key. *)

let canonical_sets sets =
  List.sort compare (List.map (fun s -> List.sort_uniq compare s) sets)

let memoized t tbl sets compute =
  let k = canonical_sets sets in
  let lookup () =
    match Hashtbl.find_opt tbl k with
    | Some v ->
        Telemetry.incr c_memo_hits;
        v
    | None ->
        Telemetry.incr c_memo_misses;
        let v = compute () in
        Hashtbl.add tbl k v;
        v
  in
  if Pool.parallel_active () then begin
    (* The lock spans lookup, compute and store, so exactly one task
       computes each distinct key and every other query of it is a
       hit — the same hit/miss totals as a sequential run, whatever
       the schedule.  [compute] recurses only into the lock-free
       membership/extendability paths of the same constraint, never
       back into [memoized], so the mutex is never re-entered. *)
    Mutex.lock t.memo_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.memo_mu) lookup
  end
  else lookup ()

let exists_pick ~complete sets t =
  let rec go acc = function
    | [] -> complete acc
    | set :: rest ->
        List.exists
          (fun l ->
            let acc' = Multiset.add l acc in
            extendable acc' t && go acc' rest)
          set
  in
  go Multiset.empty sets

let for_all_pick ~complete sets t =
  let rec go acc = function
    | [] -> complete acc
    | set :: rest ->
        List.for_all
          (fun l ->
            let acc' = Multiset.add l acc in
            extendable acc' t && go acc' rest)
          set
  in
  go Multiset.empty sets

let exists_choice sets t =
  if List.length sets <> t.arity then invalid_arg "Constr.exists_choice: arity mismatch";
  memoized t t.memo_exists sets @@ fun () ->
  exists_pick ~complete:(fun acc -> mem acc t) sets t

let for_all_choices sets t =
  if List.length sets <> t.arity then invalid_arg "Constr.for_all_choices: arity mismatch";
  (* A partial pick that is not extendable witnesses a violating full
     pick (any completion of it), so the universal test may
     short-circuit on it.  An empty position set makes the product
     empty and the test vacuously true. *)
  memoized t t.memo_for_all sets @@ fun () ->
  for_all_pick ~complete:(fun acc -> mem acc t) sets t

let exists_choice_partial sets t =
  if List.length sets > t.arity then invalid_arg "Constr.exists_choice_partial";
  memoized t t.memo_exists_partial sets @@ fun () ->
  exists_pick ~complete:(fun acc -> extendable acc t) sets t

let for_all_choices_partial sets t =
  if List.length sets > t.arity then invalid_arg "Constr.for_all_choices_partial";
  memoized t t.memo_for_all_partial sets @@ fun () ->
  for_all_pick ~complete:(fun acc -> extendable acc t) sets t

let labels_used t =
  Config_set.fold
    (fun c acc -> List.fold_left (fun acc l -> l :: acc) acc (Multiset.support c))
    t.configs []
  |> List.sort_uniq compare

let map_labels f t =
  make ~arity:t.arity
    (List.map (fun c -> Multiset.map f c) (configs t))

let equal a b = a.arity = b.arity && Config_set.equal a.configs b.configs
let subset a b = Config_set.subset a.configs b.configs

let pp alphabet fmt t =
  let pp_config fmt c =
    Multiset.pp (fun fmt l -> Alphabet.pp_label alphabet fmt l) fmt c
  in
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    pp_config fmt (configs t)
