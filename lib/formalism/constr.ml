module Multiset = Slocal_util.Multiset

module Config_set = Set.Make (struct
  type t = Multiset.t

  let compare = Multiset.compare
end)

type t = {
  arity : int;
  configs : Config_set.t;
  (* Downward closure by size, built lazily: down.(k) is the set of all
     size-k sub-multisets of configurations. *)
  down : Config_set.t option array;
}

let make ~arity config_list =
  List.iter
    (fun c ->
      if Multiset.size c <> arity then
        invalid_arg "Constr.make: configuration has wrong size")
    config_list;
  {
    arity;
    configs = Config_set.of_list config_list;
    down = Array.make (arity + 1) None;
  }

let arity t = t.arity
let configs t = Config_set.elements t.configs
let size t = Config_set.cardinal t.configs
let mem c t = Config_set.mem c t.configs

let down_closure t k =
  match t.down.(k) with
  | Some s -> s
  | None ->
      let s =
        Config_set.fold
          (fun c acc ->
            List.fold_left
              (fun acc sub -> Config_set.add sub acc)
              acc
              (Multiset.sub_multisets k c))
          t.configs Config_set.empty
      in
      t.down.(k) <- Some s;
      s

let extendable partial t =
  let k = Multiset.size partial in
  if k > t.arity then false
  else if k = t.arity then mem partial t
  else Config_set.mem partial (down_closure t k)

(* Quantified-choice tests.  Positions are processed one at a time; the
   accumulated partial multiset is pruned through [extendable]. *)

let exists_pick ~complete sets t =
  let rec go acc = function
    | [] -> complete acc
    | set :: rest ->
        List.exists
          (fun l ->
            let acc' = Multiset.add l acc in
            extendable acc' t && go acc' rest)
          set
  in
  go Multiset.empty sets

let exists_choice sets t =
  if List.length sets <> t.arity then invalid_arg "Constr.exists_choice: arity mismatch";
  exists_pick ~complete:(fun acc -> mem acc t) sets t

let for_all_choices sets t =
  if List.length sets <> t.arity then invalid_arg "Constr.for_all_choices: arity mismatch";
  (* A partial pick that is not extendable witnesses a violating full
     pick (any completion of it), so the universal test may
     short-circuit on it.  An empty position set makes the product
     empty and the test vacuously true. *)
  let rec go acc = function
    | [] -> mem acc t
    | set :: rest ->
        List.for_all
          (fun l ->
            let acc' = Multiset.add l acc in
            extendable acc' t && go acc' rest)
          set
  in
  go Multiset.empty sets

let exists_choice_partial sets t =
  if List.length sets > t.arity then invalid_arg "Constr.exists_choice_partial";
  exists_pick ~complete:(fun acc -> extendable acc t) sets t

let for_all_choices_partial sets t =
  if List.length sets > t.arity then invalid_arg "Constr.for_all_choices_partial";
  let rec go acc = function
    | [] -> extendable acc t
    | set :: rest ->
        List.for_all
          (fun l ->
            let acc' = Multiset.add l acc in
            extendable acc' t && go acc' rest)
          set
  in
  go Multiset.empty sets

let labels_used t =
  Config_set.fold
    (fun c acc -> List.fold_left (fun acc l -> l :: acc) acc (Multiset.support c))
    t.configs []
  |> List.sort_uniq compare

let map_labels f t =
  make ~arity:t.arity
    (List.map (fun c -> Multiset.map f c) (configs t))

let equal a b = a.arity = b.arity && Config_set.equal a.configs b.configs
let subset a b = Config_set.subset a.configs b.configs

let pp alphabet fmt t =
  let pp_config fmt c =
    Multiset.pp (fun fmt l -> Alphabet.pp_label alphabet fmt l) fmt c
  in
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    pp_config fmt (configs t)
