module Multiset = Slocal_util.Multiset
module Combinat = Slocal_util.Combinat

type t = {
  name : string;
  alphabet : Alphabet.t;
  white : Constr.t;
  black : Constr.t;
}

let make ~name ~alphabet ~white ~black =
  let check c =
    List.iter
      (fun l ->
        if l < 0 || l >= Alphabet.size alphabet then
          invalid_arg "Problem.make: label out of alphabet")
      (Constr.labels_used c)
  in
  check white;
  check black;
  { name; alphabet; white; black }

let d_white t = Constr.arity t.white
let d_black t = Constr.arity t.black

(* ------------------------------------------------------------------ *)
(* Parsing the condensed syntax.                                       *)

type token = Name of string | Lbracket | Rbracket | Caret | Int of int | Bar

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let is_delim c =
    is_space c || c = '[' || c = ']' || c = '^' || c = '|' || c = '\n'
  in
  while !i < n do
    let c = s.[!i] in
    if is_space c then incr i
    else if c = '\n' || c = '|' then begin
      tokens := Bar :: !tokens;
      incr i
    end
    else if c = '[' then begin
      tokens := Lbracket :: !tokens;
      incr i
    end
    else if c = ']' then begin
      tokens := Rbracket :: !tokens;
      incr i
    end
    else if c = '^' then begin
      tokens := Caret :: !tokens;
      incr i
    end
    else begin
      let j = ref !i in
      while !j < n && not (is_delim s.[!j]) do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      i := !j;
      match int_of_string_opt word with
      | Some k when !tokens <> [] && List.hd !tokens = Caret ->
          tokens := Int k :: !tokens
      | _ -> tokens := Name word :: !tokens
    end
  done;
  List.rev !tokens

(* One configuration line -> list of (alternatives, repetition). *)
let parse_items alphabet tokens =
  let lookup w =
    match Alphabet.find alphabet w with
    | Some l -> l
    | None -> invalid_arg (Printf.sprintf "Problem.parse: unknown label %S" w)
  in
  let rec items acc = function
    | [] -> List.rev acc
    | Name w :: rest -> exponent acc [ lookup w ] rest
    | Lbracket :: rest ->
        let rec group ls = function
          | Name w :: rest -> group (lookup w :: ls) rest
          | Rbracket :: rest ->
              if ls = [] then invalid_arg "Problem.parse: empty bracket group";
              (List.rev ls, rest)
          | _ -> invalid_arg "Problem.parse: malformed bracket group"
        in
        let alts, rest = group [] rest in
        exponent acc alts rest
    | (Rbracket | Caret | Int _ | Bar) :: _ ->
        invalid_arg "Problem.parse: unexpected token"
  and exponent acc alts = function
    | Caret :: Int k :: rest ->
        if k < 0 then invalid_arg "Problem.parse: negative exponent";
        items ((alts, k) :: acc) rest
    | Caret :: _ -> invalid_arg "Problem.parse: ^ must be followed by an integer"
    | rest -> items ((alts, 1) :: acc) rest
  in
  items [] tokens

let expand_items_multi items =
  let positions =
    List.concat_map (fun (alts, k) -> List.init k (fun _ -> alts)) items
  in
  Combinat.cartesian positions |> List.map Multiset.of_list

let parse_configs_multi alphabet s =
  let tokens = tokenize s in
  (* Split on Bar. *)
  let groups =
    List.fold_left
      (fun acc tok ->
        match (tok, acc) with
        | Bar, _ -> [] :: acc
        | t, cur :: rest -> (t :: cur) :: rest
        | _, [] -> assert false)
      [ [] ] tokens
    |> List.rev_map List.rev
    |> List.filter (fun g -> g <> [])
  in
  List.concat_map (fun g -> expand_items_multi (parse_items alphabet g)) groups
  |> List.sort Multiset.compare

let parse_configs alphabet s =
  List.sort_uniq Multiset.compare (parse_configs_multi alphabet s)

let parse ~name ~labels ~white ~black =
  let alphabet = Alphabet.of_names labels in
  let parse_side which s =
    let configs = parse_configs alphabet s in
    match configs with
    | [] -> invalid_arg (Printf.sprintf "Problem.parse: empty %s constraint" which)
    | c :: _ ->
        let arity = Multiset.size c in
        List.iter
          (fun c' ->
            if Multiset.size c' <> arity then
              invalid_arg
                (Printf.sprintf
                   "Problem.parse: %s configurations of different sizes" which))
          configs;
        Constr.make ~arity configs
  in
  make ~name ~alphabet ~white:(parse_side "white" white)
    ~black:(parse_side "black" black)

(* ------------------------------------------------------------------ *)

let to_string t =
  let buf = Buffer.create 256 in
  let config_line c =
    String.concat " "
      (List.map (Alphabet.name t.alphabet) (Multiset.to_list c))
  in
  Buffer.add_string buf (Printf.sprintf "problem %s\n" t.name);
  Buffer.add_string buf
    (Printf.sprintf "labels: %s\n" (String.concat " " (Alphabet.names t.alphabet)));
  Buffer.add_string buf "white:\n";
  List.iter
    (fun c -> Buffer.add_string buf ("  " ^ config_line c ^ "\n"))
    (Constr.configs t.white);
  Buffer.add_string buf "black:\n";
  List.iter
    (fun c -> Buffer.add_string buf ("  " ^ config_line c ^ "\n"))
    (Constr.configs t.black);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let trim = String.trim in
  let name = ref None
  and labels = ref None
  and white = Buffer.create 64
  and black = Buffer.create 64 in
  let section = ref `None in
  List.iter
    (fun raw ->
      let line = trim raw in
      if line = "" || line.[0] = '#' then ()
      else if String.length line > 8 && String.sub line 0 8 = "problem " then
        name := Some (trim (String.sub line 8 (String.length line - 8)))
      else if String.length line > 7 && String.sub line 0 7 = "labels:" then
        labels :=
          Some
            (String.split_on_char ' '
               (trim (String.sub line 7 (String.length line - 7)))
            |> List.filter (fun s -> s <> ""))
      else if line = "white:" then section := `White
      else if line = "black:" then section := `Black
      else
        match !section with
        | `White ->
            Buffer.add_string white line;
            Buffer.add_char white '\n'
        | `Black ->
            Buffer.add_string black line;
            Buffer.add_char black '\n'
        | `None ->
            invalid_arg
              (Printf.sprintf "Problem.of_string: unexpected line %S" line))
    lines;
  match (!name, !labels) with
  | _, None -> invalid_arg "Problem.of_string: missing labels: line"
  | name, Some labels ->
      parse
        ~name:(Option.value name ~default:"unnamed")
        ~labels
        ~white:(Buffer.contents white)
        ~black:(Buffer.contents black)

let swap_sides t =
  { t with name = t.name ^ "-swapped"; white = t.black; black = t.white }

let rename t name = { t with name }

let equal a b =
  Alphabet.equal a.alphabet b.alphabet
  && Constr.equal a.white b.white
  && Constr.equal a.black b.black

(* Signature of a label: its multiplicity profile across the white and
   black configurations.  Invariant under relabeling, used to prune the
   bijection search. *)
let label_signature p l =
  let profile c =
    List.sort compare
      (List.filter_map
         (fun cfg ->
           let k = Multiset.count l cfg in
           if k > 0 then Some k else None)
         (Constr.configs c))
  in
  (profile p.white, profile p.black)

let canonical_hash p =
  let n = Alphabet.size p.alphabet in
  let sigs = List.sort compare (List.init n (label_signature p)) in
  Hashtbl.hash
    ( Constr.arity p.white,
      Constr.arity p.black,
      Constr.size p.white,
      Constr.size p.black,
      sigs )

let equal_up_to_renaming a b =
  let na = Alphabet.size a.alphabet and nb = Alphabet.size b.alphabet in
  if na <> nb then false
  else if Constr.arity a.white <> Constr.arity b.white then false
  else if Constr.arity a.black <> Constr.arity b.black then false
  else if Constr.size a.white <> Constr.size b.white then false
  else if Constr.size a.black <> Constr.size b.black then false
  else begin
    let sig_a = Array.init na (label_signature a) in
    let sig_b = Array.init nb (label_signature b) in
    let mapping = Array.make na (-1) in
    let used = Array.make nb false in
    let check_final () =
      let f l = mapping.(l) in
      Constr.equal (Constr.map_labels f a.white) b.white
      && Constr.equal (Constr.map_labels f a.black) b.black
    in
    let rec go l =
      if l = na then check_final ()
      else
        let rec try_target t =
          if t = nb then false
          else if (not used.(t)) && sig_a.(l) = sig_b.(t) then begin
            mapping.(l) <- t;
            used.(t) <- true;
            let ok = go (l + 1) in
            used.(t) <- false;
            mapping.(l) <- -1;
            ok || try_target (t + 1)
          end
          else try_target (t + 1)
        in
        try_target 0
    in
    go 0
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
