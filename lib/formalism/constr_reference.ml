module Multiset = Slocal_util.Multiset

(* Every query answers directly from the configuration list of the
   constraint: no hash tables, no cached down-closures, no memo.  Kept
   deliberately naive — the differential property suite compares the
   fast kernel against these semantics. *)

let mem c t = List.exists (Multiset.equal c) (Constr.configs t)

let extendable partial t =
  Multiset.size partial <= Constr.arity t
  && List.exists (fun cfg -> Multiset.subset partial cfg) (Constr.configs t)

let pick_walk ~combine ~complete sets =
  let rec go acc = function
    | [] -> complete acc
    | set :: rest -> combine (fun l -> go (Multiset.add l acc) rest) set
  in
  go Multiset.empty sets

let exists_choice sets t =
  if List.length sets <> Constr.arity t then
    invalid_arg "Constr_reference.exists_choice: arity mismatch";
  pick_walk ~combine:(fun f s -> List.exists f s)
    ~complete:(fun acc -> mem acc t)
    sets

let for_all_choices sets t =
  if List.length sets <> Constr.arity t then
    invalid_arg "Constr_reference.for_all_choices: arity mismatch";
  pick_walk ~combine:(fun f s -> List.for_all f s)
    ~complete:(fun acc -> mem acc t)
    sets

let exists_choice_partial sets t =
  if List.length sets > Constr.arity t then
    invalid_arg "Constr_reference.exists_choice_partial";
  pick_walk ~combine:(fun f s -> List.exists f s)
    ~complete:(fun acc -> extendable acc t)
    sets

let for_all_choices_partial sets t =
  if List.length sets > Constr.arity t then
    invalid_arg "Constr_reference.for_all_choices_partial";
  pick_walk ~combine:(fun f s -> List.for_all f s)
    ~complete:(fun acc -> extendable acc t)
    sets
