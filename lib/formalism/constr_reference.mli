(** Unmemoized constraint-query oracle.

    Answers the same queries as {!Constr} by scanning the configuration
    list directly — no packed keys, no cached down-closures, no
    memoization, no pruning of the choice walks.  The differential
    property suite ([test/test_proptest.ml]) checks {!Constr}'s
    memoized fast paths against these reference semantics on random
    constraints and random queries. *)

val mem : Slocal_util.Multiset.t -> Constr.t -> bool
val extendable : Slocal_util.Multiset.t -> Constr.t -> bool
val exists_choice : int list list -> Constr.t -> bool
val for_all_choices : int list list -> Constr.t -> bool
val exists_choice_partial : int list list -> Constr.t -> bool
val for_all_choices_partial : int list list -> Constr.t -> bool
