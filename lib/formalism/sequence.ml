module Telemetry = Slocal_obs.Telemetry
module Progress = Slocal_obs.Progress

type step = {
  index : int;
  verified : bool option;
}

let c_steps = Telemetry.counter "sequence.steps"
let c_checks = Telemetry.counter "sequence.checks"

(* The RE cache counters, interned here to read their deltas around
   each iteration (registration is idempotent; Re_step owns the
   increments). *)
let c_re_hits = Telemetry.counter "re.cache_hits"
let c_re_misses = Telemetry.counter "re.cache_misses"

(* One derivation-log record per problem of the sequence.  Guarded on
   [Telemetry.enabled]: the hash and diagram are only computed when a
   sink is listening. *)
let emit_provenance ~index ~wall_ns ~cache_hits ~cache_misses (p : Problem.t) =
  if Telemetry.enabled () then begin
    Telemetry.provenance ~step:index ~label:p.Problem.name
      [
        ("hash", Problem.canonical_hash p);
        ("labels", Alphabet.size p.Problem.alphabet);
        ("white_configs", Constr.size p.Problem.white);
        ("black_configs", Constr.size p.Problem.black);
        ("diagram_edges", List.length (Diagram.edges (Diagram.black p)));
        ("re_cache_hits", cache_hits);
        ("re_cache_misses", cache_misses);
        ("wall_ns", wall_ns);
      ];
    (* A per-step counter snapshot: gives [trace report]'s
       counter-delta attribution an interval per iteration. *)
    Telemetry.emit_counters ()
  end

let check ?max_nodes ?jobs problems =
  Telemetry.span "sequence.check" @@ fun () ->
  let rec go index = function
    | p :: (q :: _ as rest) ->
        Telemetry.incr c_checks;
        let verified =
          Telemetry.span "sequence.check_step" (fun () ->
              Relaxation.exists ?max_nodes (Re_step.re ?jobs p) q)
        in
        { index; verified } :: go (index + 1) rest
    | [ _ ] | [] -> []
  in
  go 1 problems

let is_lower_bound_sequence ?max_nodes ?jobs problems =
  let steps = check ?max_nodes ?jobs problems in
  if List.exists (fun s -> s.verified = Some false) steps then Some false
  else if List.exists (fun s -> s.verified = None) steps then None
  else Some true

let iterate_re ?jobs p ~steps =
  Telemetry.span "sequence.iterate_re" @@ fun () ->
  emit_provenance ~index:0 ~wall_ns:0 ~cache_hits:0 ~cache_misses:0 p;
  Progress.start ~total:steps "sequence.iterate_re";
  let rec go p i =
    if i = 0 then begin
      Progress.finish ();
      [ p ]
    end
    else begin
      Telemetry.incr c_steps;
      let h0 = Telemetry.value c_re_hits
      and m0 = Telemetry.value c_re_misses in
      let t0 = Telemetry.now_ns () in
      let q = Telemetry.span "sequence.step" (fun () -> Re_step.re ?jobs p) in
      let wall_ns = Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0) in
      emit_provenance
        ~index:(steps - i + 1)
        ~wall_ns
        ~cache_hits:(Telemetry.value c_re_hits - h0)
        ~cache_misses:(Telemetry.value c_re_misses - m0)
        q;
      if Progress.is_active () then begin
        let hits = Telemetry.value c_re_hits
        and misses = Telemetry.value c_re_misses in
        let total = hits + misses in
        let hit_rate =
          if total = 0 then 0.
          else 100. *. float_of_int hits /. float_of_int total
        in
        Progress.tick
          ~step:(steps - i + 1)
          ~info:
            (Printf.sprintf "labels=%d re.cache %.0f%%"
               (Alphabet.size q.Problem.alphabet)
               hit_rate)
          ()
      end;
      p :: go q (i - 1)
    end
  in
  go p steps

let constant p ~k = List.init (k + 1) (fun _ -> p)
