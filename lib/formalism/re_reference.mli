(** Reference round-elimination kernel.

    The original implementation of the [R]/[R̄] operators, preserved
    as an oracle: bottom-up enumeration of all good set configurations
    with a quadratic pairwise domination filter, and no result cache.
    Constraint queries go through {!Constr} as they did in the seed
    (whose queries already pruned through down-closures); {!Constr}
    itself is differentially tested against the unmemoized
    {!Constr_reference} scans.  The fast kernel in
    {!Re_step} must agree with it up to label renaming — the
    differential property suite and the [--kernel reference] CLI switch
    exercise exactly this contract.

    Counts into the same [re.steps] / [re.enum_nodes] telemetry
    counters as the fast kernel, so before/after kernel comparisons
    read one set of metrics. *)

val r_black : Problem.t -> Problem.t * Slocal_util.Bitset.t array
(** [R]: maximality on the black side; also returns the meaning of each
    new label (set of old labels). *)

val r_white : Problem.t -> Problem.t * Slocal_util.Bitset.t array
(** [R̄]: maximality on the white side. *)

val re : Problem.t -> Problem.t
(** [RE(Π) = R̄(R(Π))], with fresh atomic labels. *)

val maximal_good_configs :
  candidates:Slocal_util.Bitset.t list ->
  arity:int ->
  Constr.t ->
  Slocal_util.Bitset.t list list
(** Bottom-up enumerate-then-filter maximal good configurations (the
    fast kernel's lattice search is differentially tested against
    this). *)

val dominated :
  Slocal_util.Bitset.t list -> Slocal_util.Bitset.t list -> bool
(** [dominated a b]: [a ≠ b] and some alignment has [a_i ⊆ b_φ(i)]
    position-wise. *)
