module Bitset = Slocal_util.Bitset
module Multiset = Slocal_util.Multiset

type t = {
  size : int;
  reach : Bitset.t array; (* reach.(y) = labels at least as strong as y, incl. y *)
}

(* Direct strength test from the definition: every configuration
   containing y stays in C under replacing any positive number of
   copies of y by x. *)
let directly_stronger constr x y =
  x = y
  || List.for_all
       (fun cfg ->
         let k = Multiset.count y cfg in
         if k = 0 then true
         else begin
           let ok = ref true in
           let current = ref cfg in
           for _ = 1 to k do
             current := Multiset.add x (Multiset.remove y !current);
             if not (Constr.mem !current constr) then ok := false
           done;
           !ok
         end)
       (Constr.configs constr)

let of_constraint ~alphabet_size constr =
  let n = alphabet_size in
  let rel = Array.make_matrix n n false in
  for y = 0 to n - 1 do
    for x = 0 to n - 1 do
      rel.(y).(x) <- directly_stronger constr x y
    done
  done;
  (* The relation is transitive by a replacement argument, but we take
     the transitive closure anyway so that [reach] is reachability even
     if a degenerate constraint breaks the argument. *)
  for k = 0 to n - 1 do
    for y = 0 to n - 1 do
      if rel.(y).(k) then
        for x = 0 to n - 1 do
          if rel.(k).(x) then rel.(y).(x) <- true
        done
    done
  done;
  let reach =
    Array.init n (fun y ->
        let s = ref (Bitset.singleton y) in
        for x = 0 to n - 1 do
          if rel.(y).(x) then s := Bitset.add x !s
        done;
        !s)
  in
  { size = n; reach }

let black p =
  of_constraint ~alphabet_size:(Alphabet.size p.Problem.alphabet) p.Problem.black

let white p =
  of_constraint ~alphabet_size:(Alphabet.size p.Problem.alphabet) p.Problem.white

let stronger d x y = Bitset.mem x d.reach.(y)
let successors d y = d.reach.(y)

let all_edges d =
  let acc = ref [] in
  for y = d.size - 1 downto 0 do
    List.iter
      (fun x -> if x <> y then acc := (y, x) :: !acc)
      (List.rev (Bitset.to_list d.reach.(y)))
  done;
  !acc

(* Drop edge (y, x) when some intermediate z gives y -> z -> x; in the
   presence of strength-equivalent labels keep a representative edge. *)
let edges d =
  List.filter
    (fun (y, x) ->
      let equivalent a b = stronger d a b && stronger d b a in
      if equivalent y x then
        (* Keep only the orientation from the smaller label. *)
        y < x
      else
        not
          (List.exists
             (fun z ->
               z <> x && z <> y
               && (not (equivalent z x))
               && (not (equivalent z y))
               && stronger d z y && stronger d x z)
             (List.init d.size (fun i -> i))))
    (all_edges d)

let is_right_closed d s =
  Bitset.for_all (fun l -> Bitset.subset d.reach.(l) s) s

let right_closure d s =
  Bitset.fold (fun l acc -> Bitset.union d.reach.(l) acc) s Bitset.empty

(* The nonempty right-closed sets are exactly the nonempty unions of
   [reach] sets: [reach] is transitively closed, so unions of its sets
   are right-closed, and a right-closed [s] is the union of the reaches
   of its members.  Enumerating the union-closure family directly costs
   O(output × generators) instead of filtering all 2^n subsets. *)
let right_closed_sets d =
  let generators =
    Array.to_list d.reach |> List.sort_uniq Bitset.compare
  in
  let seen = Hashtbl.create 64 in
  Hashtbl.add seen Bitset.empty ();
  let family = ref [ Bitset.empty ] in
  List.iter
    (fun g ->
      List.iter
        (fun f ->
          let u = Bitset.union f g in
          if not (Hashtbl.mem seen u) then begin
            Hashtbl.add seen u ();
            family := u :: !family
          end)
        !family)
    generators;
  List.filter (fun s -> not (Bitset.is_empty s)) !family
  |> List.sort (fun a b ->
         compare
           (Bitset.cardinal a, Bitset.to_list a)
           (Bitset.cardinal b, Bitset.to_list b))

let pp alphabet fmt d =
  let pp_edge fmt (y, x) =
    Format.fprintf fmt "%s -> %s" (Alphabet.name alphabet y)
      (Alphabet.name alphabet x)
  in
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    pp_edge fmt (edges d)
