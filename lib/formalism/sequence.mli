(** Lower-bound sequences (Section 2).

    A list [Π_0, …, Π_k] is a lower-bound sequence when each [Π_i] is a
    relaxation of [RE(Π_{i-1})].  Theorem B.2 converts such a sequence,
    plus 0-round unsolvability of [Π_k], into a round lower bound for
    [Π_0].  This module builds and machine-checks sequences.

    Both {!check} and {!iterate_re} go through {!Re_step.re}, whose
    fast kernel caches results across invocations: building a sequence
    with {!iterate_re} and then verifying it with {!check} recomputes
    no RE step (the second pass hits the cache, counted in
    [re.cache_hits]).

    {b Provenance.}  While a telemetry sink is installed,
    {!iterate_re} emits one [provenance] event per problem of the
    sequence (a machine-readable derivation log): step index, the
    renaming-invariant {!Problem.canonical_hash}, label and
    white/black configuration counts, the black diagram's reduced edge
    count, the [re.cache_hits]/[re.cache_misses] deltas of that
    iteration, and its wall time.  [slocal trace report] renders these
    as a per-step table.  Both entry points also open spans
    ([sequence.iterate_re]/[sequence.step],
    [sequence.check]/[sequence.check_step]) and count iterations in
    [sequence.steps]/[sequence.checks]; with the default null sink the
    extra cost is a counter increment per step. *)

type step = {
  index : int;
  verified : bool option;
      (** [Some true]: relaxation verified; [Some false]: refuted;
          [None]: search budget exhausted. *)
}

val check : ?max_nodes:int -> ?jobs:int -> Problem.t list -> step list
(** Verify every consecutive step of a candidate sequence.  An empty or
    singleton list yields no steps.  [jobs] is passed to the RE step
    of each check ({!Re_step.re}); the verdicts are identical for
    every width. *)

val is_lower_bound_sequence :
  ?max_nodes:int -> ?jobs:int -> Problem.t list -> bool option
(** [Some true] iff every step verifies; [Some false] if some step is
    refuted; [None] if undecided within budget. *)

val iterate_re : ?jobs:int -> Problem.t -> steps:int -> Problem.t list
(** [Π, RE(Π), RE²(Π), …] — always a lower-bound sequence (each problem
    trivially relaxes itself, and is exactly [RE] of its predecessor).
    [jobs > 1] parallelizes each RE step's lattice descents
    ({!Re_step.re}); the sequence is byte-identical for every width. *)

val constant : Problem.t -> k:int -> Problem.t list
(** The fixed-point sequence [Π, Π, …, Π] of length [k+1]: a
    lower-bound sequence whenever [Π] relaxes [RE(Π)]. *)
