(** Problems in the black-white formalism (Section 2 of the paper).

    A problem is a tuple [(Σ, C_W, C_B)]: a finite alphabet, a white
    constraint whose configurations have size [d_W], and a black
    constraint whose configurations have size [d_B].  On bipartite
    2-colored graphs, a (bipartite) solution labels every edge with an
    element of Σ such that white nodes of degree exactly [d_W] see a
    multiset of incident labels in [C_W], and black nodes of degree
    exactly [d_B] one in [C_B].

    Constraints can be written in the paper's condensed syntax: each
    line is one (condensed) configuration; a position is either a label
    name or a bracket group [\[A B\]] of alternatives, optionally
    followed by [^k] for repetition.  For example, the maximal matching
    problem of Appendix A with Δ = 3 is

    {v
      white:  M O^2 | P^3
      black:  M [O P]^2 | O^3
    v}

    (the [|] separates configurations when given on one line; newlines
    work too). *)

type t = {
  name : string;
  alphabet : Alphabet.t;
  white : Constr.t;
  black : Constr.t;
}

val make : name:string -> alphabet:Alphabet.t -> white:Constr.t -> black:Constr.t -> t
(** @raise Invalid_argument if a constraint uses a label outside the
    alphabet. *)

val d_white : t -> int
val d_black : t -> int

val parse : name:string -> labels:string list -> white:string -> black:string -> t
(** Build a problem from the condensed textual syntax described above.
    @raise Invalid_argument on syntax errors or unknown labels. *)

val parse_configs : Alphabet.t -> string -> Slocal_util.Multiset.t list
(** Parse a constraint in the condensed syntax, expanding condensed
    configurations to the full set. *)

val to_string : t -> string
(** Round-trippable textual form (one expanded configuration per line). *)

val of_string : string -> t
(** Parse the document format produced by {!to_string}:

    {v
      problem <name>
      labels: <name> ...
      white:
        <configuration lines, condensed syntax allowed>
      black:
        <configuration lines>
    v}

    Blank lines and lines starting with [#] are ignored.
    @raise Invalid_argument on malformed input. *)

val swap_sides : t -> t
(** Exchange the white and black constraints. *)

val rename : t -> string -> t

val equal : t -> t -> bool
(** Structural equality (same alphabet order, same configuration sets). *)

val equal_up_to_renaming : t -> t -> bool
(** Equality up to a bijective relabeling of the alphabets. *)

val canonical_hash : t -> int
(** A hash invariant under label renaming (and independent of the
    problem name): problems equal up to renaming hash equally.  Derived
    from the arities, constraint sizes and the sorted multiset of label
    signatures.  Buckets the cross-invocation RE cache. *)

val pp : Format.formatter -> t -> unit
