(* staticcheck: immutable-after-init the interning index is filled in of_names and read-only afterwards *)
type t = {
  names : string array;
  index : (string, int) Hashtbl.t;
}

let reserved c =
  c = '[' || c = ']' || c = '^' || c = '(' || c = ')' || c = ' ' || c = '\t'
  || c = '\n' || c = '\r'

let valid_name s = s <> "" && String.for_all (fun c -> not (reserved c)) s

let of_names names =
  let arr = Array.of_list names in
  let index = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i s ->
      if not (valid_name s) then
        invalid_arg (Printf.sprintf "Alphabet.of_names: bad label name %S" s);
      if Hashtbl.mem index s then
        invalid_arg (Printf.sprintf "Alphabet.of_names: duplicate label %S" s);
      Hashtbl.add index s i)
    arr;
  { names = arr; index }

let size t = Array.length t.names

let name t i =
  if i < 0 || i >= size t then invalid_arg "Alphabet.name: out of range";
  t.names.(i)

let find t s = Hashtbl.find_opt t.index s

let find_exn t s =
  match find t s with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Alphabet: unknown label %S" s)

let names t = Array.to_list t.names
let mem t s = Hashtbl.mem t.index s
let equal a b = a.names = b.names
let pp_label t fmt i = Format.pp_print_string fmt (name t i)

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
       Format.pp_print_string)
    (names t)
