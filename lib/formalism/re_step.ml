module Bitset = Slocal_util.Bitset
module Multiset = Slocal_util.Multiset
module Config_key = Slocal_util.Config_key
module Telemetry = Slocal_obs.Telemetry
module Pool = Slocal_obs.Pool

type grounding = {
  problem : Problem.t;
  meaning : Bitset.t array;
}

type kernel = Fast | Reference

let kernel = ref Fast (* staticcheck: immutable-after-init selected once by the CLI / test setup before any RE runs *)
let set_kernel k = kernel := k
let current_kernel () = !kernel

let c_steps = Telemetry.counter "re.steps"
let c_enum_nodes = Telemetry.counter "re.enum_nodes"
let c_cache_hits = Telemetry.counter "re.cache_hits"
let c_cache_misses = Telemetry.counter "re.cache_misses"
let g_labels_out = Telemetry.gauge "re.labels_out"
let g_strong_configs = Telemetry.gauge "re.strong_configs"
let g_weak_configs = Telemetry.gauge "re.weak_configs"

(* Enumerate multisets of size [arity] over [candidates] (given as an
   array, chosen with non-decreasing indices to avoid duplicates),
   keeping those accepted by [full] and pruning prefixes rejected by
   [partial].  Still the engine of the weak (existential) side — whose
   good set is upward-closed, so the lattice prune below does not apply
   — and of the lift construction. *)
let enumerate_set_configs ~candidates ~arity ~partial ~full =
  let cands = Array.of_list candidates in
  let k = Array.length cands in
  let acc = ref [] in
  let nodes = ref 0 in
  let rec go start chosen depth =
    incr nodes;
    if depth = arity then begin
      let config = List.rev chosen in
      if full config then acc := config :: !acc
    end
    else
      for i = start to k - 1 do
        let chosen' = cands.(i) :: chosen in
        if partial (List.rev chosen') then go i chosen' (depth + 1)
      done
  in
  go 0 [] 0;
  Telemetry.add c_enum_nodes !nodes;
  List.rev !acc

let sets_to_lists config = List.map Bitset.to_list config

(* Alignment test shared with the maximality filter: [a] is dominated
   by [b] when a ≠ b and some permutation has a_i ⊆ b_φ(i). *)
let match_up_subset a b =
  let rec match_up a_rest b_rest =
    match a_rest with
    | [] -> true
    | x :: a' ->
        let rec try_pick seen = function
          | [] -> false
          | y :: b' ->
              (Bitset.subset x y && match_up a' (List.rev_append seen b'))
              || try_pick (y :: seen) b'
        in
        try_pick [] b_rest
  in
  match_up a b

(* Maximal good configurations by a top-down subset-lattice search.

   A set configuration is good when every per-position choice lies in
   [constr].  Goodness is downward closed in the position-wise subset
   order over the candidate family: shrinking a position only removes
   choices.  So instead of enumerating the whole (large) good down-set
   bottom-up and filtering quadratically, start from the top
   configurations (all positions at ⊆-maximal candidates — for
   right-closed candidate sets that is the single all-labels universe)
   and branch downward only where a concrete violation forces it: a
   non-good configuration admits a violating choice (w_1, …, w_k), and
   any good configuration below it must drop w_j from some position j
   — so its children are, for each position j, the replacements of
   position j by a ⊆-maximal candidate subset excluding w_j.  Every
   maximal good configuration M below cfg survives into some child:
   were every position of (an alignment of) M to retain its witness
   label, M would admit the same violating choice.  The collected good
   leaves contain all maximal configurations plus some dominated ones;
   since a strict dominator has strictly larger total cardinality, a
   single descending-cardinality sweep against the already-accepted
   maxima finishes the filter.

   Visited configurations count into [re.enum_nodes] — the same
   budget the bottom-up enumeration used — so kernel comparisons are
   apples-to-apples.

   With [jobs > 1] the descent runs as a breadth-first wave sweep:
   the coordinator keeps the [visited] dedup table and the [shrink]
   memo to itself, and fans each wave's [violating_choice]
   evaluations — the expensive part, all memoized constraint
   queries — out over the pool as independent tasks with
   index-addressed result slots.  The visited closure is the same set
   as the depth-first walk's (the expansion rule per node is
   identical and the closure is order-independent), so
   [re.enum_nodes] is exact; the constraint memo totals are exact
   because {!Constr} holds its memo lock across lookup+compute+store
   while a pool region is open; and the final
   cardinality-sweep-plus-sort below is order-independent, so the
   output is byte-identical to [jobs = 1]. *)
let maximal_good_configs ?(jobs = 1) ~candidates ~arity constr =
  let cands = Array.of_list candidates in
  let k = Array.length cands in
  if k = 0 then []
  else begin
    let idxs = List.init k Fun.id in
    let strictly_below i j =
      i <> j && Bitset.subset cands.(i) cands.(j)
      && not (Bitset.equal cands.(i) cands.(j))
    in
    let maximal_cands =
      List.filter
        (fun i -> not (List.exists (fun j -> strictly_below i j) idxs))
        idxs
    in
    (* shrink.(i) for label l: the ⊆-maximal candidates below candidate
       i that exclude l (computed on demand, once per (i, l)). *)
    let shrink = Array.make k [] in
    let shrink_excluding i l =
      match List.assq_opt l shrink.(i) with
      | Some js -> js
      | None ->
          let below =
            List.filter
              (fun j ->
                (not (Bitset.mem l cands.(j)))
                && Bitset.subset cands.(j) cands.(i))
              idxs
          in
          let js =
            List.filter
              (fun j -> not (List.exists (fun j' -> strictly_below j j') below))
              below
          in
          shrink.(i) <- (l, js) :: shrink.(i);
          js
    in
    let bits = Config_key.bits_for (max 1 k) in
    let key cfg = Config_key.of_multiset ~bits cfg in
    let cfg_sets cfg =
      List.map (fun i -> Bitset.to_list cands.(i)) (Multiset.to_list cfg)
    in
    (* A violating choice of cfg: (position, label) pairs forming a
       {e dead} pick — a multiset no configuration of [constr] extends
       (at full size, deadness is non-membership); [None] means cfg is
       good.  The memoized [for_all_choices] answers the good case.
       The walk returns the first dead partial pick it meets (falling
       back to a full-length pick when every proper prefix stays
       extendable), then greedily minimizes it: dropping any label
       that leaves the pick dead.  Minimal witnesses mean minimal
       branching — a good configuration below cfg must exclude the
       witness label at one of the witness positions only. *)
    let violating_choice cfg =
      let sets = cfg_sets cfg in
      if Constr.for_all_choices sets constr then None
      else
        let dead picked =
          not (Constr.extendable (Multiset.of_list (List.map snd picked)) constr)
        in
        let minimize witness =
          let rec go kept = function
            | [] -> List.rev kept
            | e :: rest ->
                if dead (List.rev_append kept rest) then go kept rest
                else go (e :: kept) rest
          in
          go [] witness
        in
        let rec go j picked = function
          | [] ->
              let m = Multiset.of_list (List.map snd picked) in
              if Constr.mem m constr then None else Some (List.rev picked)
          | s :: rest ->
              if dead picked then Some (List.rev picked)
              else
                let rec first = function
                  | [] -> None
                  | l :: ls -> (
                      match go (j + 1) ((j, l) :: picked) rest with
                      | Some _ as w -> w
                      | None -> first ls)
                in
                first s
        in
        Option.map minimize (go 0 [] sets)
    in
    let visited = Config_key.Tbl.create 256 in
    let frontier = ref [] in
    let nodes = ref 0 in
    (* Children of a non-good cfg under a violating witness: for each
       witness position, the replacements of that position by a
       ⊆-maximal candidate subset excluding the witness label.
       Shared by the depth-first walk and the wave sweep. *)
    let children cfg witness =
      let positions = Multiset.to_list cfg in
      List.concat_map
        (fun (j, w) ->
          let i = List.nth positions j in
          let rest = Multiset.remove i cfg in
          List.map (fun t -> Multiset.add t rest) (shrink_excluding i w))
        witness
    in
    (* First visit of a config: dedup through [visited], count the
       node.  Coordinator-only state in both modes. *)
    let first_visit cfg =
      let kk = key cfg in
      if Config_key.Tbl.mem visited kk then false
      else begin
        Config_key.Tbl.add visited kk ();
        incr nodes;
        true
      end
    in
    let rec visit cfg =
      if first_visit cfg then
        match violating_choice cfg with
        | None -> frontier := cfg :: !frontier
        | Some witness -> List.iter visit (children cfg witness)
    in
    (* Top configurations: all size-[arity] multisets of ⊆-maximal
       candidates (a single one when the universe is a candidate, as
       with right-closed families). *)
    let tops = Array.of_list maximal_cands in
    let m = Array.length tops in
    let top_list = ref [] in
    let rec top_configs start chosen depth =
      if depth = arity then top_list := Multiset.of_list chosen :: !top_list
      else
        for i = start to m - 1 do
          top_configs i (tops.(i) :: chosen) (depth + 1)
        done
    in
    top_configs 0 [] 0;
    if jobs <= 1 then List.iter visit (List.rev !top_list)
    else begin
      (* Wave sweep: the coordinator dedups and expands, the pool
         evaluates each wave's violating choices in parallel.  The
         union of the waves is exactly the depth-first closure. *)
      let wave = ref (List.filter first_visit (List.rev !top_list)) in
      while !wave <> [] do
        let arr = Array.of_list !wave in
        let verdicts =
          Pool.run ~jobs (Array.length arr) (fun i -> violating_choice arr.(i))
        in
        let next = ref [] in
        Array.iteri
          (fun i verdict ->
            match verdict with
            | None -> frontier := arr.(i) :: !frontier
            | Some witness ->
                List.iter
                  (fun child ->
                    if first_visit child then next := child :: !next)
                  (children arr.(i) witness))
          verdicts;
        wave := List.rev !next
      done
    end;
    Telemetry.add c_enum_nodes !nodes;
    let card = Array.map Bitset.cardinal cands in
    let total cfg =
      List.fold_left (fun acc i -> acc + card.(i)) 0 (Multiset.to_list cfg)
    in
    let to_sets cfg = List.map (fun i -> cands.(i)) (Multiset.to_list cfg) in
    let by_total_desc =
      List.sort
        (fun (ta, _, _) (tb, _, _) -> Int.compare tb ta)
        (List.map (fun c -> (total c, c, to_sets c)) !frontier)
    in
    let accepted =
      List.fold_left
        (fun acc (ta, cfg, sets) ->
          if
            List.exists
              (fun (tb, _, sets_b) -> tb > ta && match_up_subset sets sets_b)
              acc
          then acc
          else (ta, cfg, sets) :: acc)
        [] by_total_desc
    in
    (* Ascending-index-sequence order, matching the bottom-up
       enumeration order of the reference kernel. *)
    List.sort
      (fun (_, a, _) (_, b, _) -> Multiset.compare a b)
      accepted
    |> List.map (fun (_, _, sets) -> sets)
  end

(* Single-character member names concatenate unambiguously ("MX");
   otherwise the set is wrapped as ⟨a,b,…⟩ so that nested set names
   from iterated RE steps stay injective. *)
let set_name alphabet s =
  let names = List.map (Alphabet.name alphabet) (Bitset.to_list s) in
  if List.for_all (fun n -> String.length n = 1) names then
    String.concat "" names
  else "\xe2\x9f\xa8" ^ String.concat "," names ^ "\xe2\x9f\xa9"

(* Core of R: maximality on [strong] side, existence on [weak] side.
   [strong_constr] keeps its arity; new labels are the sets appearing
   in the maximal good configurations. *)
let r_core ~jobs ~name ~alphabet ~strong_constr ~weak_constr =
  Telemetry.span "re.step" @@ fun () ->
  Telemetry.incr c_steps;
  let diagram =
    Diagram.of_constraint ~alphabet_size:(Alphabet.size alphabet) strong_constr
  in
  (* Maximal good configurations consist of right-closed sets (any good
     configuration is dominated by its position-wise right closure). *)
  let candidates = Diagram.right_closed_sets diagram in
  let strong_configs =
    maximal_good_configs ~jobs ~candidates ~arity:(Constr.arity strong_constr)
      strong_constr
  in
  if strong_configs = [] then
    invalid_arg "Re_step: empty result constraint (problem is 0-round unsolvable everywhere)";
  let sigma' =
    List.concat strong_configs |> List.sort_uniq Bitset.compare
  in
  let meaning = Array.of_list sigma' in
  let index =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun i s -> Hashtbl.add tbl s i) meaning;
    tbl
  in
  let alphabet' = Alphabet.of_names (List.map (set_name alphabet) sigma') in
  let to_config sets =
    Multiset.of_list (List.map (Hashtbl.find index) sets)
  in
  let weak_configs =
    enumerate_set_configs ~candidates:sigma' ~arity:(Constr.arity weak_constr)
      ~partial:(fun cfg ->
        Constr.exists_choice_partial (sets_to_lists cfg) weak_constr)
      ~full:(fun cfg -> Constr.exists_choice (sets_to_lists cfg) weak_constr)
  in
  let strong' =
    Constr.make ~arity:(Constr.arity strong_constr)
      (List.map to_config strong_configs)
  in
  let weak' =
    Constr.make ~arity:(Constr.arity weak_constr)
      (List.map to_config weak_configs)
  in
  Telemetry.set g_labels_out (Array.length meaning);
  Telemetry.set g_strong_configs (List.length strong_configs);
  Telemetry.set g_weak_configs (List.length weak_configs);
  (name, alphabet', strong', weak', meaning)

let r_black_fast ?(jobs = 1) (p : Problem.t) =
  let name, alphabet, black, white, meaning =
    r_core ~jobs ~name:("R(" ^ p.Problem.name ^ ")")
      ~alphabet:p.Problem.alphabet ~strong_constr:p.Problem.black
      ~weak_constr:p.Problem.white
  in
  { problem = Problem.make ~name ~alphabet ~white ~black; meaning }

let r_white_fast ?(jobs = 1) (p : Problem.t) =
  let name, alphabet, white, black, meaning =
    r_core ~jobs ~name:("R̄(" ^ p.Problem.name ^ ")")
      ~alphabet:p.Problem.alphabet ~strong_constr:p.Problem.white
      ~weak_constr:p.Problem.black
  in
  { problem = Problem.make ~name ~alphabet ~white ~black; meaning }

let r_black ?(jobs = 1) p =
  match !kernel with
  | Fast -> r_black_fast ~jobs p
  | Reference ->
      let problem, meaning = Re_reference.r_black p in
      { problem; meaning }

let r_white ?(jobs = 1) p =
  match !kernel with
  | Fast -> r_white_fast ~jobs p
  | Reference ->
      let problem, meaning = Re_reference.r_white p in
      { problem; meaning }

(* Cross-invocation RE cache.  Fixed-point checks and sequence
   verification recompute RE on problems just produced by RE; caching
   by structural problem equality makes those reuses free.  Buckets are
   keyed by the renaming-invariant [Problem.canonical_hash], but a hit
   additionally requires structural [Problem.equal] (same alphabet
   names and order): a renamed variant must re-run, because the result
   alphabet is built from the input label names.  The cached value is
   independent of the input problem's own name; the RE(...) name is
   re-applied per call. *)

(* staticcheck: shared-cache-needs-lock cross-invocation RE memo; every access holds result_cache_mu *)
let result_cache : (int, (Problem.t * Problem.t) list) Hashtbl.t =
  Hashtbl.create 64

let result_cache_entries = ref 0 (* staticcheck: shared-cache-needs-lock occupancy count paired with result_cache; same lock *)
let max_result_cache_entries = 512

(* Guards [result_cache]/[result_cache_entries]: [re] is legal from
   inside pool tasks (a batch of REs over a problem pool), and those
   tasks share this one process-wide table.  The lock is never held
   across an RE computation — only across lookup and insertion — so
   two tasks missing on the same problem may both compute it (a
   benign duplicate; both count a miss, last insertion wins). *)
let result_cache_mu = Mutex.create () (* staticcheck: domain-safe result-cache lock; taken around every result_cache access *)

let locked f =
  Mutex.lock result_cache_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock result_cache_mu) f

(* Internal eviction (cache full): drops the entries but keeps the
   hit/miss counters accumulating, so mid-run evictions do not hide
   traffic from hit-rate numbers. *)
let evict_all () =
  locked @@ fun () ->
  Hashtbl.reset result_cache;
  result_cache_entries := 0

let clear_cache () =
  evict_all ();
  (* An explicit clear starts a fresh measurement window: hit-rate
     numbers after it must not be polluted by pre-clear traffic.  The
     counters may have accumulated in worker shards (REs run inside
     pool tasks), so the reset must zero every shard — a plain
     [Telemetry.set _ 0] would leave the workers' contributions
     standing and send post-clear delta windows negative. *)
  Telemetry.zero c_cache_hits;
  Telemetry.zero c_cache_misses

let re_fast ?jobs p =
  let step1 = r_black_fast ?jobs p in
  let step2 = r_white_fast ?jobs step1.problem in
  step2.problem

let re ?(cache = true) ?jobs p =
  let renamed result = Problem.rename result ("RE(" ^ p.Problem.name ^ ")") in
  match !kernel with
  | Reference -> Re_reference.re p
  | Fast when not cache -> renamed (re_fast ?jobs p)
  | Fast ->
      let h = Problem.canonical_hash p in
      let hit =
        locked @@ fun () ->
        let bucket =
          Option.value (Hashtbl.find_opt result_cache h) ~default:[]
        in
        let hit = List.find_opt (fun (q, _) -> Problem.equal q p) bucket in
        (match hit with
        | Some _ -> Telemetry.incr c_cache_hits
        | None -> Telemetry.incr c_cache_misses);
        hit
      in
      (match hit with
      | Some (_, result) -> renamed result
      | None ->
          let result = re_fast ?jobs p in
          (locked @@ fun () ->
           if !result_cache_entries >= max_result_cache_entries then begin
             Hashtbl.reset result_cache;
             result_cache_entries := 0
           end;
           let bucket =
             Option.value (Hashtbl.find_opt result_cache h) ~default:[]
           in
           Hashtbl.replace result_cache h ((p, result) :: bucket);
           incr result_cache_entries);
          renamed result)

let is_fixed_point p = Problem.equal_up_to_renaming (re p) p
