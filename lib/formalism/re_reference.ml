module Bitset = Slocal_util.Bitset
module Multiset = Slocal_util.Multiset
module Telemetry = Slocal_obs.Telemetry

(* Shared with the fast kernel (Telemetry interns by name), so kernel
   comparisons read the same counters whichever implementation ran. *)
let c_steps = Telemetry.counter "re.steps"
let c_enum_nodes = Telemetry.counter "re.enum_nodes"
let g_labels_out = Telemetry.gauge "re.labels_out"
let g_strong_configs = Telemetry.gauge "re.strong_configs"
let g_weak_configs = Telemetry.gauge "re.weak_configs"

(* Bottom-up enumeration of multisets of size [arity] over [candidates]
   (non-decreasing indices), pruning prefixes via [partial]. *)
let enumerate_set_configs ~candidates ~arity ~partial ~full =
  let cands = Array.of_list candidates in
  let k = Array.length cands in
  let acc = ref [] in
  let nodes = ref 0 in
  let rec go start chosen depth =
    incr nodes;
    if depth = arity then begin
      let config = List.rev chosen in
      if full config then acc := config :: !acc
    end
    else
      for i = start to k - 1 do
        let chosen' = cands.(i) :: chosen in
        if partial (List.rev chosen') then go i chosen' (depth + 1)
      done
  in
  go 0 [] 0;
  Telemetry.add c_enum_nodes !nodes;
  List.rev !acc

let sets_to_lists config = List.map Bitset.to_list config

(* config [a] is dominated by [b]: a ≠ b and some alignment has
   a_i ⊆ b_{φ(i)} for all i. *)
let dominated a b =
  a <> b
  &&
  let rec match_up a_rest b_rest =
    match a_rest with
    | [] -> true
    | x :: a' ->
        let rec try_pick seen = function
          | [] -> false
          | y :: b' ->
              (Bitset.subset x y && match_up a' (List.rev_append seen b'))
              || try_pick (y :: seen) b'
        in
        try_pick [] b_rest
  in
  match_up a b

(* Quadratic filter: keep the configs not dominated by any other good
   config.  Queries go through [Constr] (as in the seed, whose queries
   pruned through down-closures): what this module preserves is the
   bottom-up enumeration and the pairwise domination filter, and
   [Constr] itself is differentially tested against
   [Constr_reference]. *)
let maximal_good_configs ~candidates ~arity constr =
  let good =
    enumerate_set_configs ~candidates ~arity
      ~partial:(fun cfg ->
        Constr.for_all_choices_partial (sets_to_lists cfg) constr)
      ~full:(fun cfg -> Constr.for_all_choices (sets_to_lists cfg) constr)
  in
  List.filter (fun a -> not (List.exists (fun b -> dominated a b) good)) good

let set_name alphabet s =
  let names = List.map (Alphabet.name alphabet) (Bitset.to_list s) in
  if List.for_all (fun n -> String.length n = 1) names then
    String.concat "" names
  else "\xe2\x9f\xa8" ^ String.concat "," names ^ "\xe2\x9f\xa9"

let r_core ~name ~alphabet ~strong_constr ~weak_constr =
  Telemetry.span "re.step" @@ fun () ->
  Telemetry.incr c_steps;
  let diagram =
    Diagram.of_constraint ~alphabet_size:(Alphabet.size alphabet) strong_constr
  in
  let candidates = Diagram.right_closed_sets diagram in
  let strong_configs =
    maximal_good_configs ~candidates ~arity:(Constr.arity strong_constr)
      strong_constr
  in
  if strong_configs = [] then
    invalid_arg
      "Re_step: empty result constraint (problem is 0-round unsolvable everywhere)";
  let sigma' = List.concat strong_configs |> List.sort_uniq Bitset.compare in
  let meaning = Array.of_list sigma' in
  let index =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun i s -> Hashtbl.add tbl s i) meaning;
    tbl
  in
  let alphabet' = Alphabet.of_names (List.map (set_name alphabet) sigma') in
  let to_config sets = Multiset.of_list (List.map (Hashtbl.find index) sets) in
  let weak_configs =
    enumerate_set_configs ~candidates:sigma' ~arity:(Constr.arity weak_constr)
      ~partial:(fun cfg ->
        Constr.exists_choice_partial (sets_to_lists cfg) weak_constr)
      ~full:(fun cfg -> Constr.exists_choice (sets_to_lists cfg) weak_constr)
  in
  let strong' =
    Constr.make ~arity:(Constr.arity strong_constr)
      (List.map to_config strong_configs)
  in
  let weak' =
    Constr.make ~arity:(Constr.arity weak_constr)
      (List.map to_config weak_configs)
  in
  Telemetry.set g_labels_out (Array.length meaning);
  Telemetry.set g_strong_configs (List.length strong_configs);
  Telemetry.set g_weak_configs (List.length weak_configs);
  (name, alphabet', strong', weak', meaning)

let r_black (p : Problem.t) =
  let name, alphabet, black, white, meaning =
    r_core ~name:("R(" ^ p.Problem.name ^ ")") ~alphabet:p.Problem.alphabet
      ~strong_constr:p.Problem.black ~weak_constr:p.Problem.white
  in
  ((Problem.make ~name ~alphabet ~white ~black), meaning)

let r_white (p : Problem.t) =
  let name, alphabet, white, black, meaning =
    r_core ~name:("R̄(" ^ p.Problem.name ^ ")") ~alphabet:p.Problem.alphabet
      ~strong_constr:p.Problem.white ~weak_constr:p.Problem.black
  in
  ((Problem.make ~name ~alphabet ~white ~black), meaning)

let re p =
  let step1, _ = r_black p in
  let step2, _ = r_white step1 in
  Problem.rename step2 ("RE(" ^ p.Problem.name ^ ")")
