(** The round elimination operator (Appendix B of the paper).

    [R(Π)] replaces the black constraint by the set of {e maximal}
    configurations of label-{e sets} all whose choices lie in [C_B],
    and the white constraint by the configurations of such sets
    admitting {e some} choice in [C_W].  [R̄] is the same with the two
    roles exchanged, and the full round elimination step is
    [RE(Π) = R̄(R(Π))].

    Lemma B.1: a [T]-round white algorithm for [Π] (on high-girth
    support graphs, in Supported LOCAL) yields a [(T-1)]-round black
    algorithm for [R(Π)]; symmetrically for [R̄]; hence a [T]-round
    white algorithm for [Π] yields a [(T-2)]-round white algorithm for
    [RE(Π)].

    The labels of [R(Π)] are sets of labels of [Π].  This module
    re-grounds them as fresh atomic labels and returns the {e meaning}
    of each new label — the set of old labels it stands for — so that
    steps can be chained.

    {b Kernels.}  Two implementations coexist.  The {e fast} kernel
    (default) finds the maximal good configurations by a top-down
    subset-lattice search that expands only non-good configurations
    (goodness is downward closed), answers constraint queries through
    {!Constr}'s packed-key memo tables, and caches whole RE results
    across invocations keyed by structural problem equality.  The
    {e reference} kernel is the original bottom-up
    enumerate-then-filter implementation, kept verbatim in
    {!Re_reference} as a differential oracle.  {!set_kernel} switches
    the [r_black]/[r_white]/[re]/[is_fixed_point] entry points between
    the two (the CLI exposes it as [--kernel reference|fast]); both
    kernels produce identical problems. *)

type grounding = {
  problem : Problem.t;
  meaning : Slocal_util.Bitset.t array;
      (** [meaning.(l)] is the set of previous-alphabet labels that the
          new label [l] denotes. *)
}

type kernel = Fast | Reference

val set_kernel : kernel -> unit
(** Select the implementation behind {!r_black}, {!r_white}, {!re} and
    {!is_fixed_point}.  Default: [Fast]. *)

val current_kernel : unit -> kernel

val r_black : ?jobs:int -> Problem.t -> grounding
(** The operator [R]: maximality on the black side, existence on the
    white side.  [jobs > 1] fans the fast kernel's lattice descent
    out over an {!Slocal_obs.Pool} (see {!maximal_good_configs});
    output and counter totals are identical to [jobs = 1].  The
    reference kernel ignores [jobs]. *)

val r_white : ?jobs:int -> Problem.t -> grounding
(** The operator [R̄]: maximality on the white side, existence on the
    black side.  [jobs] as in {!r_black}. *)

val re : ?cache:bool -> ?jobs:int -> Problem.t -> Problem.t
(** [RE(Π) = R̄(R(Π))], with fresh atomic labels.  With the fast
    kernel, results are cached across invocations (hits require
    structural {!Problem.equal}; buckets use
    {!Problem.canonical_hash}; [re.cache_hits]/[re.cache_misses]
    count both outcomes).  Pass [~cache:false] to force a full
    recomputation (benchmarks).  [jobs > 1] parallelizes the two
    lattice descents (fast kernel only) with byte-identical output
    and exact counter totals — DESIGN.md §9. *)

val is_fixed_point : Problem.t -> bool
(** Is [RE(Π)] equal to [Π] up to label renaming?  (E.g. Lemma 5.4:
    [Π_Δ(k)] is a fixed point whenever [k <= Δ].) *)

val clear_cache : unit -> unit
(** Drop all cached RE results {e and} zero the paired
    [re.cache_hits]/[re.cache_misses] counters, so hit-rate numbers
    measured after an explicit clear are not polluted by pre-clear
    traffic (tests and benchmarks).  The internal capacity eviction
    does {e not} reset the counters. *)

val enumerate_set_configs :
  candidates:Slocal_util.Bitset.t list ->
  arity:int ->
  partial:(Slocal_util.Bitset.t list -> bool) ->
  full:(Slocal_util.Bitset.t list -> bool) ->
  Slocal_util.Bitset.t list list
(** Enumerate multisets of size [arity] over [candidates] (results as
    sorted-by-candidate-order lists), pruning any prefix rejected by
    [partial] and keeping completions accepted by [full].  Shared by
    the weak (existential) side of the [R]/[R̄] operators and the lift
    construction. *)

val set_name : Alphabet.t -> Slocal_util.Bitset.t -> string
(** Printable name of a label set (concatenation for single-character
    member names, ⟨a,b,…⟩ otherwise). *)

val maximal_good_configs :
  ?jobs:int ->
  candidates:Slocal_util.Bitset.t list ->
  arity:int ->
  Constr.t ->
  Slocal_util.Bitset.t list list
(** The maximal multisets (given as sorted lists) of candidate
    label-sets, of size [arity], all whose choices lie in the given
    constraint — computed by the fast top-down lattice search
    regardless of {!set_kernel} (the reference implementation lives in
    {!Re_reference.maximal_good_configs}).  Visited lattice nodes
    count into [re.enum_nodes].  [jobs > 1] (default 1) evaluates the
    per-configuration violating-choice tests wave by wave over an
    {!Slocal_obs.Pool}: the visited closure, the output and the
    [re.enum_nodes]/[constr.memo_*] totals are identical to the
    sequential descent (DESIGN.md §9). *)
