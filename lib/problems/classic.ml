open Slocal_graph
open Slocal_formalism

let sinkless_orientation ~delta =
  if delta < 2 then invalid_arg "Classic.sinkless_orientation: Δ >= 2";
  Problem.parse
    ~name:(Printf.sprintf "sinkless-orientation_%d" delta)
    ~labels:[ "O"; "I" ]
    ~white:(Printf.sprintf "O [O I]^%d" (delta - 1))
    ~black:(Printf.sprintf "I [I O]^%d" (delta - 1))

(* Π_Δ(Δ) is Π_Δ((α+1)·c) with α = Δ-1, c = 1; Δ <= 9 because of the
   digit encoding of color names in Coloring_family. *)
let sinkless_coloring ~delta =
  if delta > 9 then invalid_arg "Classic.sinkless_coloring: Δ <= 9 supported";
  Problem.rename (Coloring_family.pi ~delta ~c:delta)
    (Printf.sprintf "sinkless-coloring_%d" delta)

let coloring ~delta ~c =
  if c < 1 then invalid_arg "Classic.coloring: c >= 1";
  let labels = List.init c (fun i -> Printf.sprintf "c%d" (i + 1)) in
  let white =
    String.concat " | "
      (List.map (fun l -> Printf.sprintf "%s^%d" l delta) labels)
  in
  let black =
    String.concat " | "
      (List.concat_map
         (fun l1 ->
           List.filter_map
             (fun l2 -> if l1 < l2 then Some (l1 ^ " " ^ l2) else None)
             labels)
         labels)
  in
  if black = "" then invalid_arg "Classic.coloring: c >= 2 required";
  Problem.parse
    ~name:(Printf.sprintf "%d-coloring_%d" c delta)
    ~labels ~white ~black

let mis_family ~delta = Ruling_family.pi ~delta ~c:1 ~beta:1

let ruling_set_family ~delta ~beta = Ruling_family.pi ~delta ~c:1 ~beta

let is_sinkless_orientation g ~towards_head =
  let oriented = Hashtbl.create 16 in
  let ok = ref true in
  List.iter
    (fun (e, head) ->
      if e < 0 || e >= Graph.m g then ok := false
      else begin
        let u, v = Graph.edge g e in
        if head <> u && head <> v then ok := false;
        if Hashtbl.mem oriented e then ok := false;
        Hashtbl.add oriented e head
      end)
    towards_head;
  for e = 0 to Graph.m g - 1 do
    if not (Hashtbl.mem oriented e) then ok := false
  done;
  let has_outgoing = Array.make (Graph.n g) false in
  (* staticcheck: domain-safe order-insensitive: each edge sets its tail's flag independently *)
  Hashtbl.iter
    (fun e head ->
      let u, v = Graph.edge g e in
      let tail = if head = u then v else u in
      has_outgoing.(tail) <- true)
    oriented;
  !ok
  && Array.for_all (fun b -> b)
       (Array.init (Graph.n g) (fun v -> Graph.degree g v = 0 || has_outgoing.(v)))
