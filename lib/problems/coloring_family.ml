open Slocal_graph
open Slocal_formalism
module Multiset = Slocal_util.Multiset

let set_name colors = "C" ^ String.concat "" (List.map string_of_int colors)

(* Non-empty subsets of {1..c}, ordered by bitmask. *)
let color_subsets c =
  List.init ((1 lsl c) - 1) (fun i ->
      let mask = i + 1 in
      List.filter (fun col -> (mask lsr (col - 1)) land 1 = 1)
        (List.init c (fun j -> j + 1)))

let pi ~delta ~c =
  if c < 1 || c > 9 then invalid_arg "Coloring_family.pi: need 1 <= c <= 9";
  if delta < 1 then invalid_arg "Coloring_family.pi: need Δ >= 1";
  let subsets = color_subsets c in
  let labels = "X" :: List.map set_name subsets in
  let alphabet = Alphabet.of_names labels in
  let x_label = 0 in
  let label_of_subset =
    let tbl = Hashtbl.create 32 in
    List.iteri (fun i s -> Hashtbl.add tbl s (i + 1)) subsets;
    Hashtbl.find tbl
  in
  (* Color sets with |C| - 1 > Δ admit no configuration of size Δ; the
     label ℓ(C) still exists (it may appear inside lift label-sets) but
     contributes nothing to the white constraint. *)
  let white_configs =
    List.filter_map
      (fun s ->
        let x = List.length s - 1 in
        if x > delta then None
        else
          Some
            (Multiset.of_list
               (Multiset.to_list
                  (Multiset.replicate (delta - x) (label_of_subset s))
               @ Multiset.to_list (Multiset.replicate x x_label))))
      subsets
  in
  let disjoint s1 s2 = List.for_all (fun col -> not (List.mem col s2)) s1 in
  let black_configs =
    let pairs =
      List.concat_map
        (fun s1 ->
          List.filter_map
            (fun s2 ->
              if disjoint s1 s2 then
                Some (Multiset.of_list [ label_of_subset s1; label_of_subset s2 ])
              else None)
            subsets)
        subsets
    in
    let with_x =
      List.init (List.length labels) (fun l -> Multiset.of_list [ x_label; l ])
    in
    List.sort_uniq Multiset.compare (pairs @ with_x)
  in
  Problem.make
    ~name:(Printf.sprintf "pi_%d(%d)" delta c)
    ~alphabet
    ~white:(Constr.make ~arity:delta white_configs)
    ~black:(Constr.make ~arity:2 black_configs)

let label_x (p : Problem.t) = Alphabet.find_exn p.Problem.alphabet "X"

let color_set_label (p : Problem.t) colors =
  Alphabet.find_exn p.Problem.alphabet (set_name colors)

let color_set_of_label (p : Problem.t) l =
  let name = Alphabet.name p.Problem.alphabet l in
  if name = "X" then None
  else if String.length name > 1 && name.[0] = 'C' then
    Some
      (List.init
         (String.length name - 1)
         (fun i -> Char.code name.[i + 1] - Char.code '0'))
  else None

let is_arbdefective_coloring g ~alpha ~c ~colors ~orientation =
  Array.length colors = Graph.n g
  && Array.for_all (fun col -> col >= 0 && col < c) colors
  && begin
       let mono e =
         let u, v = Graph.edge g e in
         colors.(u) = colors.(v)
       in
       let oriented = Hashtbl.create 16 in
       let ok = ref true in
       List.iter
         (fun (e, head) ->
           if e < 0 || e >= Graph.m g then ok := false
           else begin
             let u, v = Graph.edge g e in
             if head <> u && head <> v then ok := false;
             if not (mono e) then ok := false;
             if Hashtbl.mem oriented e then ok := false;
             Hashtbl.add oriented e head
           end)
         orientation;
       (* Every monochromatic edge must be oriented. *)
       for e = 0 to Graph.m g - 1 do
         if mono e && not (Hashtbl.mem oriented e) then ok := false
       done;
       (* Out-degree (tail side) bounded by alpha. *)
       let outdeg = Array.make (Graph.n g) 0 in
       (* staticcheck: domain-safe order-insensitive: out-degrees accumulate commutatively *)
       Hashtbl.iter
         (fun e head ->
           let u, v = Graph.edge g e in
           let tail = if head = u then v else u in
           outdeg.(tail) <- outdeg.(tail) + 1)
         oriented;
       Array.iter (fun d -> if d > alpha then ok := false) outdeg;
       !ok
     end

let pi_solution_of_arbdefective g ~alpha ~c ~colors ~orientation =
  if not (is_arbdefective_coloring g ~alpha ~c ~colors ~orientation) then
    invalid_arg "pi_solution_of_arbdefective: invalid input coloring";
  let delta = Graph.max_degree g in
  if alpha > delta then invalid_arg "pi_solution_of_arbdefective: alpha > Δ";
  let k = (alpha + 1) * c in
  let problem = pi ~delta ~c:k in
  (* Block of (α+1) colors of Π for graph color q (0-based): these
     blocks are pairwise disjoint, so differently-colored neighbours
     automatically satisfy the disjointness constraint. *)
  let block q = List.init (alpha + 1) (fun j -> (q * (alpha + 1)) + j + 1) in
  let x = label_x problem in
  let is_x = Hashtbl.create 64 in
  List.iter
    (fun (e, head) ->
      let u, v = Graph.edge g e in
      let tail = if head = u then v else u in
      Hashtbl.replace is_x (tail, e) ())
    orientation;
  (* Pad degree-Δ nodes to exactly alpha X's. *)
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v = delta then begin
      let current =
        List.length
          (List.filter (fun e -> Hashtbl.mem is_x (v, e)) (Graph.incident g v))
      in
      let missing = ref (alpha - current) in
      List.iter
        (fun e ->
          if !missing > 0 && not (Hashtbl.mem is_x (v, e)) then begin
            Hashtbl.replace is_x (v, e) ();
            decr missing
          end)
        (Graph.incident g v)
    end
  done;
  let labeling v e =
    if Hashtbl.mem is_x (v, e) then x
    else color_set_label problem (block colors.(v))
  in
  (problem, labeling)
